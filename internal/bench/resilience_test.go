package bench

import (
	"bytes"
	"testing"

	"mhafs/internal/fault"
	"mhafs/internal/layout"
)

// TestFigFaultsResilience is the subsystem's end-to-end gate: every
// scenario × scheme cell completes (no hangs, no surfaced application
// errors — RunScheme fails on either), the no-fault row is action-free
// and matches the historical fault-free path exactly, and under the
// SServer outage MHA's degraded completion stays bounded by the HARL
// baseline.
func TestFigFaultsResilience(t *testing.T) {
	c := Default()
	c.Scale = 512
	rows, tables, err := c.FigFaults(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want completion + actions", len(tables))
	}
	want := fault.Scenarios()
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d scenarios", len(rows), len(want))
	}
	byScenario := make(map[fault.Scenario]FaultRow, len(rows))
	for i, row := range rows {
		if row.Scenario != want[i] {
			t.Errorf("row %d scenario = %s, want %s", i, row.Scenario, want[i])
		}
		byScenario[row.Scenario] = row
		for _, s := range layout.AllSchemes() {
			if row.Makespan[s] <= 0 {
				t.Errorf("%s/%v: makespan %v", row.Scenario, s, row.Makespan[s])
			}
		}
	}

	// The resilient pipeline with an empty schedule is action-free and
	// virtual-time identical to the pipeline without resilience stages.
	none := byScenario[fault.ScenarioNone]
	for s, a := range none.Actions {
		if a != (FaultActions{}) {
			t.Errorf("no-fault run of %v performed fault actions: %+v", s, a)
		}
	}
	tr, err := c.faultWorkload()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := c.RunScheme(layout.MHA, tr) // c.Faults == "": no resilience machinery
	if err != nil {
		t.Fatal(err)
	}
	if got := none.Makespan[layout.MHA]; got != plain.Result.Makespan {
		t.Errorf("resilient no-fault makespan %v != fault-free path %v", got, plain.Result.Makespan)
	}

	outage := byScenario[fault.ScenarioOutage]
	for _, s := range layout.AllSchemes() {
		if outage.Actions[s].Failovers == 0 {
			t.Errorf("outage/%v: no failovers — writes were not remapped", s)
		}
		if outage.Actions[s].Degraded == 0 {
			t.Errorf("outage/%v: no degraded requests recorded", s)
		}
	}
	if mha, harl := outage.Makespan[layout.MHA], outage.Makespan[layout.HARL]; mha > harl*1.05 {
		t.Errorf("outage: MHA degraded completion %v exceeds HARL baseline %v", mha, harl)
	}

	if flaky := byScenario[fault.ScenarioFlaky]; flaky.Actions[layout.MHA].Retries == 0 {
		t.Error("flaky: no retries recorded")
	}
	if straggler := byScenario[fault.ScenarioStraggler]; straggler.Makespan[layout.DEF] <= none.Makespan[layout.DEF] {
		t.Error("straggler: DEF not slower than the no-fault run")
	}
}

// faultFigure renders both resilience tables at the given worker count.
func faultFigure(t *testing.T, workers int) string {
	t.Helper()
	c := Default()
	c.Scale = 512
	c.Workers = workers
	_, tables, err := c.FigFaults(nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		if err := tb.Fprint(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// TestFaultFigureWorkersIdentical: the rendered resilience figure is
// byte-identical at every worker count (serial-vs-parallel equivalence of
// the fault scenarios).
func TestFaultFigureWorkersIdentical(t *testing.T) {
	serial := faultFigure(t, 1)
	for _, workers := range []int{2, 8} {
		if got := faultFigure(t, workers); got != serial {
			t.Errorf("workers=%d: resilience figure differs from serial run", workers)
		}
	}
}

// TestFaultSeedVariesSchedule: the flaky scenario's window placement
// follows the seed — different seeds, different completion times — while
// the same seed reproduces exactly.
func TestFaultSeedVariesSchedule(t *testing.T) {
	run := func(seed int64) float64 {
		c := Default()
		c.Scale = 512
		c.Faults = fault.ScenarioFlaky
		c.FaultSeed = seed
		tr, err := c.faultWorkload()
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.RunScheme(layout.DEF, tr)
		if err != nil {
			t.Fatal(err)
		}
		return r.Result.Makespan
	}
	a, b := run(1), run(1)
	if a != b {
		t.Fatalf("same seed, different makespans: %v vs %v", a, b)
	}
	if run(99) == a {
		t.Error("seeds 1 and 99 produced identical flaky makespans (schedule ignores the seed)")
	}
}

func TestConfigValidateFaults(t *testing.T) {
	c := Default()
	c.Faults = "meteor-strike"
	if err := c.Validate(); err == nil {
		t.Error("unknown scenario accepted")
	}
	c.Faults = fault.ScenarioOutage
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
	c.Faults = ""
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}
