package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"mhafs/internal/layout"
	"mhafs/internal/metrics"
)

// Export is the machine-readable form of one mhabench run: every table
// generated, plus the per-scheme aggregate bandwidth across the bandwidth
// figures. It is what `mhabench -json` writes (BENCH_pipeline.json) and
// what the CompareExports perf-gate diffs.
type Export struct {
	Scale    int64 `json:"scale"`
	HServers int   `json:"hservers"`
	SServers int   `json:"sservers"`
	// ScaleTier names the workload tier ("paper" or "xl"). Legacy numeric
	// runs leave it empty, so their export bytes are unchanged.
	ScaleTier string `json:"scale_tier,omitempty"`
	// EventsPerSec and AllocsPerOp are the XL tier's wall-clock and
	// allocation figures — real time and runtime counters, so
	// nondeterministic; paper exports omit them.
	EventsPerSec float64        `json:"events_per_sec,omitempty"`
	AllocsPerOp  float64        `json:"allocs_per_op,omitempty"`
	Figures      []FigureExport `json:"figures"`
	// Bandwidth maps scheme name to its mean read/write bandwidth across
	// every x-axis point of the generated bandwidth figures.
	Bandwidth map[string]BandwidthExport `json:"aggregate_bandwidth_mbps"`
}

// FigureExport is one generated table.
type FigureExport struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// BandwidthExport is one scheme's aggregate bandwidth summary.
type BandwidthExport struct {
	ReadMBps     float64 `json:"read_mbps"`
	WriteMBps    float64 `json:"write_mbps"`
	ReadSamples  int     `json:"read_samples"`
	WriteSamples int     `json:"write_samples"`
}

// AddFigure appends a generated table to the export.
func (e *Export) AddFigure(id string, tb *metrics.Table) {
	e.Figures = append(e.Figures, FigureExport{
		ID: id, Title: tb.Title, Headers: tb.Headers, Rows: tb.Data(),
	})
}

// Aggregator folds bandwidth figure rows into per-scheme running means.
type Aggregator map[layout.Scheme]*bandwidthAgg

type bandwidthAgg struct {
	readSum, writeSum float64
	readN, writeN     int
}

// NewAggregator returns an empty aggregator.
func NewAggregator() Aggregator { return make(Aggregator) }

// Add folds every positive per-scheme sample of the rows in.
func (g Aggregator) Add(rows []BandwidthRow) {
	for _, row := range rows {
		for _, s := range layout.AllSchemes() {
			a := g[s]
			if a == nil {
				a = &bandwidthAgg{}
				g[s] = a
			}
			if bw, ok := row.Read[s]; ok && bw > 0 {
				a.readSum += bw
				a.readN++
			}
			if bw, ok := row.Write[s]; ok && bw > 0 {
				a.writeSum += bw
				a.writeN++
			}
		}
	}
}

// Summary renders the aggregate as the export's bandwidth map.
func (g Aggregator) Summary() map[string]BandwidthExport {
	out := make(map[string]BandwidthExport, len(g))
	for s, a := range g {
		b := BandwidthExport{ReadSamples: a.readN, WriteSamples: a.writeN}
		if a.readN > 0 {
			b.ReadMBps = a.readSum / float64(a.readN)
		}
		if a.writeN > 0 {
			b.WriteMBps = a.writeSum / float64(a.writeN)
		}
		out[s.String()] = b
	}
	return out
}

// WriteFile writes the export as indented JSON (map keys sorted by
// encoding/json, so the bytes are stable for identical runs).
func (e Export) WriteFile(path string) error {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadExport reads an export written by WriteFile / `mhabench -json`.
func LoadExport(path string) (Export, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Export{}, err
	}
	var e Export
	if err := json.Unmarshal(data, &e); err != nil {
		return Export{}, fmt.Errorf("bench: %s: %w", path, err)
	}
	return e, nil
}
