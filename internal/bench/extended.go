package bench

import (
	"mhafs/internal/layout"
	"mhafs/internal/metrics"
	"mhafs/internal/trace"
	"mhafs/internal/units"
	"mhafs/internal/workload"
)

// ExtendedRow is one workload of the six-scheme comparison.
type ExtendedRow struct {
	Label string
	BW    map[layout.Scheme]float64 // write MB/s
}

// Extended compares the paper's four schemes plus the related-work
// baselines CARL and HAS (§VI) on two characteristic workloads: the Fig. 7
// mixed-size IOR write, and the LANL App2 replay. The paper argues MHA
// beats CARL ("I/O parallelism on all servers may not be fully utilized")
// and subsumes HAS's per-region candidate selection.
func (c Config) Extended() ([]ExtendedRow, *metrics.Table, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	workloads := []struct {
		label string
		mk    func() (trace.Trace, error)
	}{
		{"ior 128+256KB", func() (trace.Trace, error) {
			return workload.IOR(workload.IORConfig{
				File: "ior.dat", Op: trace.OpWrite,
				Sizes: []int64{128 * units.KB, 256 * units.KB}, Procs: []int{32},
				FileSize: c.scaled(fig7FileSize), Shuffle: true, Seed: 7,
			})
		}},
		{"lanl", func() (trace.Trace, error) {
			return workload.LANL(workload.LANLConfig{
				File: "lanl.dat", Op: trace.OpWrite, Procs: 8, Loops: c.scaledCount(fig12bLoops),
			})
		}},
	}
	rows, err := parallelRows(c, len(workloads), func(cc Config, i int) (ExtendedRow, error) {
		w := workloads[i]
		tr, err := w.mk()
		if err != nil {
			return ExtendedRow{}, err
		}
		runs, err := cc.runSchemes(layout.ExtendedSchemes(), tr)
		if err != nil {
			return ExtendedRow{}, err
		}
		row := ExtendedRow{Label: w.label, BW: make(map[layout.Scheme]float64)}
		for s, run := range runs {
			row.BW[s] = run.Result.Bandwidth()
		}
		return row, nil
	})
	if err != nil {
		return nil, nil, err
	}
	tb := metrics.NewTable("Extended comparison (writes, MB/s): + related-work baselines",
		"workload", "DEF", "AAL", "CARL", "HAS", "HARL", "MHA")
	for _, r := range rows {
		tb.AddRow(r.Label,
			r.BW[layout.DEF], r.BW[layout.AAL], r.BW[layout.CARL],
			r.BW[layout.HAS], r.BW[layout.HARL], r.BW[layout.MHA])
	}
	return rows, tb, nil
}

// LatencyRow is one scheme's request-latency distribution on the
// reference mixed workload.
type LatencyRow struct {
	Scheme layout.Scheme
	Lat    metrics.LatencySummary
}

// Latency reports per-request latency percentiles under each scheme for
// the Fig. 7 mixed-size workload — a view the paper does not plot but
// which explains its bandwidth gaps: DEF's tail is dominated by queueing
// behind overloaded HServers.
func (c Config) Latency() ([]LatencyRow, *metrics.Table, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	tr, err := workload.IOR(workload.IORConfig{
		File: "ior.dat", Op: trace.OpWrite,
		Sizes: []int64{128 * units.KB, 256 * units.KB}, Procs: []int{32},
		FileSize: c.scaled(fig7FileSize), Shuffle: true, Seed: 7,
	})
	if err != nil {
		return nil, nil, err
	}
	runs, err := c.runSchemes(layout.AllSchemes(), tr)
	if err != nil {
		return nil, nil, err
	}
	var rows []LatencyRow
	for _, s := range layout.AllSchemes() {
		rows = append(rows, LatencyRow{Scheme: s, Lat: runs[s].Result.LatencySummary()})
	}
	tb := metrics.NewTable("Per-request latency (ms), IOR 128+256KB write, 32 procs",
		"scheme", "mean", "p50", "p95", "p99", "max")
	for _, r := range rows {
		tb.AddRow(r.Scheme.String(),
			r.Lat.Mean*1e3, r.Lat.P50*1e3, r.Lat.P95*1e3, r.Lat.P99*1e3, r.Lat.Max*1e3)
	}
	return rows, tb, nil
}
