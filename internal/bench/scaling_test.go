package bench

import (
	"testing"

	"mhafs/internal/layout"
)

// The weak-scaling experiment must show MHA maintaining its advantage as
// the cluster grows: MHA beats DEF at every size, and MHA's per-server
// bandwidth does not collapse at 8x scale.
func TestScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep is slow")
	}
	c := testConfig()
	rows, tb, err := c.Scaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || tb.Rows() != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		def, mha := r.BW[layout.DEF], r.BW[layout.MHA]
		if !(mha > def) {
			t.Errorf("%d servers: MHA %.1f not above DEF %.1f", r.Servers, mha, def)
		}
	}
	small := rows[0].BW[layout.MHA] / float64(rows[0].Servers)
	big := rows[len(rows)-1].BW[layout.MHA] / float64(rows[len(rows)-1].Servers)
	if big < 0.5*small {
		t.Errorf("per-server bandwidth collapsed under scaling: %.1f -> %.1f", small, big)
	}
}
