package bench

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"mhafs/internal/telemetry"
)

// figSnapshot runs Fig. 7 plus the Fig. 14 overhead sweep at the given
// worker count with telemetry enabled and returns (tables, telemetry
// JSON) as rendered bytes.
func figSnapshot(t *testing.T, workers int) (string, string) {
	t.Helper()
	c := Default()
	c.Scale = 512
	c.Workers = workers
	reg := telemetry.NewRegistry()
	c.Telemetry = reg

	var tables bytes.Buffer
	_, tb, err := c.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Fprint(&tables); err != nil {
		t.Fatal(err)
	}
	_, tb, err = c.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Fprint(&tables); err != nil {
		t.Fatal(err)
	}

	var tel strings.Builder
	if err := reg.WriteJSON(&tel); err != nil {
		t.Fatal(err)
	}
	return tables.String(), tel.String()
}

// TestFiguresSerialParallelIdentical is the tentpole's end-to-end
// determinism gate at the harness layer: rendered figure tables AND the
// merged telemetry snapshot must be byte-identical at workers 1, 2 and 8.
// Run under -race this also exercises the per-cell registry isolation —
// cells must never share a registry across goroutines.
func TestFiguresSerialParallelIdentical(t *testing.T) {
	serialTables, serialTel := figSnapshot(t, 1)
	if !strings.Contains(serialTel, "series") && serialTel == "" {
		t.Fatal("telemetry snapshot empty")
	}
	for _, workers := range []int{2, 8} {
		tables, tel := figSnapshot(t, workers)
		if tables != serialTables {
			t.Errorf("workers=%d: figure tables differ from serial run", workers)
		}
		if tel != serialTel {
			t.Errorf("workers=%d: telemetry snapshot differs from serial run", workers)
		}
	}
}

// TestRunAllSchemesParallelIdentical checks the scheme fan-out in
// isolation: identical per-scheme results at every worker count.
func TestRunAllSchemesParallelIdentical(t *testing.T) {
	c := Default()
	c.Scale = 512
	tr, err := workloadFig14(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	c.Workers = 1
	serial, err := c.RunAllSchemes(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		c.Workers = workers
		parallel, err := c.RunAllSchemes(tr)
		if err != nil {
			t.Fatal(err)
		}
		for s, run := range serial {
			if !reflect.DeepEqual(run.Result, parallel[s].Result) {
				t.Errorf("workers=%d: scheme %v replay result differs", workers, s)
			}
		}
	}
}
