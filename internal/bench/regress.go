package bench

import (
	"fmt"
	"sort"
)

// Regression is one gated metric that fell below the tolerance band:
// the new run's aggregate bandwidth dropped more than tol below the old
// run's for one scheme and direction.
type Regression struct {
	Scheme string
	Metric string // "read_mbps" or "write_mbps"
	Old    float64
	New    float64
	Limit  float64 // Old × (1 − tol), the lowest acceptable value
}

// Shortfall is the relative drop below the baseline: (Old − New) / Old.
// It is the gate's severity measure — a value of 0.08 reads "8% slower
// than the baseline" — and always exceeds the tolerance for a reported
// regression.
func (r Regression) Shortfall() float64 {
	if r.Old <= 0 {
		return 0
	}
	return (r.Old - r.New) / r.Old
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s regressed: %.2f -> %.2f (-%.1f%%, limit %.2f)",
		r.Scheme, r.Metric, r.Old, r.New, r.Shortfall()*100, r.Limit)
}

// CompareExports gates a new run against an old baseline: every scheme's
// aggregate read/write bandwidth in old must be matched by new within the
// relative tolerance tol (0.05 = new may be up to 5% slower). It returns
// the regressions worst-first — ordered by descending Shortfall, ties
// broken by (scheme, metric) so the order stays deterministic — or an
// error when the runs are incomparable: different scale or cluster
// shape, a scheme missing from the new run, or a baseline without
// bandwidth data. Improvements and schemes present only in new never
// fail the gate.
func CompareExports(old, new Export, tol float64) ([]Regression, error) {
	if tol < 0 || tol >= 1 {
		return nil, fmt.Errorf("bench: tolerance %v outside [0,1)", tol)
	}
	if old.Scale != new.Scale || old.HServers != new.HServers || old.SServers != new.SServers {
		return nil, fmt.Errorf(
			"bench: incomparable runs: baseline scale=%d h=%d s=%d vs new scale=%d h=%d s=%d",
			old.Scale, old.HServers, old.SServers, new.Scale, new.HServers, new.SServers)
	}
	if len(old.Bandwidth) == 0 {
		return nil, fmt.Errorf("bench: baseline carries no aggregate bandwidth (was it run with -fig all?)")
	}
	schemes := make([]string, 0, len(old.Bandwidth))
	for s := range old.Bandwidth {
		schemes = append(schemes, s)
	}
	sort.Strings(schemes)

	var out []Regression
	for _, s := range schemes {
		ob := old.Bandwidth[s]
		nb, ok := new.Bandwidth[s]
		if !ok {
			return nil, fmt.Errorf("bench: scheme %s present in baseline but missing from new run", s)
		}
		for _, m := range []struct {
			name     string
			old, new float64
			samples  int
		}{
			{"read_mbps", ob.ReadMBps, nb.ReadMBps, ob.ReadSamples},
			{"write_mbps", ob.WriteMBps, nb.WriteMBps, ob.WriteSamples},
		} {
			if m.samples == 0 || m.old <= 0 {
				continue // nothing measured in the baseline to gate on
			}
			limit := m.old * (1 - tol)
			if m.new < limit {
				out = append(out, Regression{
					Scheme: s, Metric: m.name,
					Old: m.old, New: m.new, Limit: limit,
				})
			}
		}
	}
	// Worst regression first: on a failing gate the top line is the one
	// to chase. The scheme/metric tie-break keeps equal shortfalls (and
	// with them the full report) in a stable order.
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].Shortfall(), out[j].Shortfall()
		if si != sj {
			return si > sj
		}
		if out[i].Scheme != out[j].Scheme {
			return out[i].Scheme < out[j].Scheme
		}
		return out[i].Metric < out[j].Metric
	})
	return out, nil
}
