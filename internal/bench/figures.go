package bench

import (
	"fmt"

	"mhafs/internal/layout"
	"mhafs/internal/metrics"
	"mhafs/internal/trace"
	"mhafs/internal/units"
	"mhafs/internal/workload"
)

// schemeOrder is the column order of every figure, matching the paper.
var schemeOrder = layout.AllSchemes()

// BandwidthRow is one x-axis point of a bandwidth figure: the label and
// the per-scheme read/write bandwidths in MB/s.
type BandwidthRow struct {
	Label string
	Read  map[layout.Scheme]float64
	Write map[layout.Scheme]float64
}

// runBandwidthPoint replays the read and write variants of a workload
// under every scheme.
func (c Config) runBandwidthPoint(label string, mk func(op trace.Op) (trace.Trace, error)) (BandwidthRow, error) {
	row := BandwidthRow{
		Label: label,
		Read:  make(map[layout.Scheme]float64),
		Write: make(map[layout.Scheme]float64),
	}
	ops := []trace.Op{trace.OpRead, trace.OpWrite}
	perOp, err := parallelRows(c, len(ops), func(cc Config, i int) (map[layout.Scheme]SchemeRun, error) {
		tr, err := mk(ops[i])
		if err != nil {
			return nil, err
		}
		return cc.RunAllSchemes(tr)
	})
	if err != nil {
		return row, err
	}
	for i, op := range ops {
		for s, r := range perOp[i] {
			bw := r.Result.Bandwidth()
			if op == trace.OpRead {
				row.Read[s] = bw
			} else {
				row.Write[s] = bw
			}
		}
	}
	return row, nil
}

// bandwidthTable renders rows into the paper's figure form.
func bandwidthTable(title string, rows []BandwidthRow) *metrics.Table {
	tb := metrics.NewTable(title,
		"workload", "op",
		schemeOrder[0].String(), schemeOrder[1].String(),
		schemeOrder[2].String(), schemeOrder[3].String(),
	)
	for _, row := range rows {
		tb.AddRow(row.Label, "read",
			row.Read[schemeOrder[0]], row.Read[schemeOrder[1]],
			row.Read[schemeOrder[2]], row.Read[schemeOrder[3]])
		tb.AddRow(row.Label, "write",
			row.Write[schemeOrder[0]], row.Write[schemeOrder[1]],
			row.Write[schemeOrder[2]], row.Write[schemeOrder[3]])
	}
	return tb
}

// Fig3 regenerates the LANL access sequence of Fig. 3: the request sizes
// of the first loops.
func Fig3(loops int) *metrics.Table {
	tb := metrics.NewTable("Fig. 3: data access sequence in LANL App2 loops",
		"request#", "size(bytes)")
	for i, s := range workload.LANLSequence(loops) {
		tb.AddRow(i, s)
	}
	return tb
}

// fig7Mixes are the request-size mixes of Fig. 7 (KB).
var fig7Mixes = []struct {
	label string
	sizes []int64
}{
	{"16", []int64{16 * units.KB}},
	{"64+128", []int64{64 * units.KB, 128 * units.KB}},
	{"128+256", []int64{128 * units.KB, 256 * units.KB}},
	{"64+128+256", []int64{64 * units.KB, 128 * units.KB, 256 * units.KB}},
}

// fig7FileSize is the paper's 16 GB IOR file (before scaling).
const fig7FileSize = 16 * units.GB

// Fig7 reproduces "Bandwidths of IOR with mixed request sizes": 32
// processes issuing random requests at the mixed sizes against a shared
// file.
func (c Config) Fig7() ([]BandwidthRow, *metrics.Table, error) {
	rows, err := parallelRows(c, len(fig7Mixes), func(cc Config, i int) (BandwidthRow, error) {
		mix := fig7Mixes[i]
		return cc.runBandwidthPoint(mix.label, func(op trace.Op) (trace.Trace, error) {
			return workload.IOR(workload.IORConfig{
				File: "ior.dat", Op: op,
				Sizes: mix.sizes, Procs: []int{32},
				FileSize: cc.scaled(fig7FileSize),
				Shuffle:  true, Seed: 7,
			})
		})
	})
	if err != nil {
		return nil, nil, err
	}
	return rows, bandwidthTable("Fig. 7: IOR bandwidth (MB/s), mixed request sizes, 32 procs", rows), nil
}

// Fig8Row is one server's I/O time under each scheme, normalized to the
// minimum server time of the MHA run (the paper normalizes "to the
// minimum of all servers under the MHA layout").
type Fig8Row struct {
	Server string
	Time   map[layout.Scheme]float64
}

// Fig8 reproduces "I/O time of each server under different data layout
// schemes" for the 128+256 KB mixed-size IOR write workload.
func (c Config) Fig8() ([]Fig8Row, *metrics.Table, error) {
	mk := func(op trace.Op) (trace.Trace, error) {
		return workload.IOR(workload.IORConfig{
			File: "ior.dat", Op: op,
			Sizes: []int64{128 * units.KB, 256 * units.KB}, Procs: []int{32},
			FileSize: c.scaled(fig7FileSize), Shuffle: true, Seed: 7,
		})
	}
	tr, err := mk(trace.OpWrite)
	if err != nil {
		return nil, nil, err
	}
	runs, err := c.RunAllSchemes(tr)
	if err != nil {
		return nil, nil, err
	}
	// Normalization base: minimum positive per-server time under MHA.
	base := 0.0
	for _, st := range runs[layout.MHA].Result.PerServer {
		if st.BusyTime > 0 && (base == 0 || st.BusyTime < base) {
			base = st.BusyTime
		}
	}
	if base == 0 {
		return nil, nil, fmt.Errorf("bench: fig8: MHA run did no I/O")
	}
	nServers := c.Cluster.HServers + c.Cluster.SServers
	rows := make([]Fig8Row, nServers)
	for i := 0; i < nServers; i++ {
		rows[i] = Fig8Row{
			Server: fmt.Sprintf("S%d", i),
			Time:   make(map[layout.Scheme]float64),
		}
		for _, s := range schemeOrder {
			rows[i].Time[s] = runs[s].Result.PerServer[i].BusyTime / base
		}
	}
	tb := metrics.NewTable(
		"Fig. 8: per-server I/O time (normalized), IOR write 128+256KB; S0-S5 HServers, S6-S7 SServers",
		"server", "DEF", "AAL", "HARL", "MHA")
	for _, r := range rows {
		tb.AddRow(r.Server, r.Time[layout.DEF], r.Time[layout.AAL], r.Time[layout.HARL], r.Time[layout.MHA])
	}
	return rows, tb, nil
}

// fig9Mixes are the process-count mixes of Fig. 9.
var fig9Mixes = []struct {
	label string
	procs []int
}{
	{"8", []int{8}},
	{"8+32", []int{8, 32}},
	{"16+64", []int{16, 64}},
	{"32+128", []int{32, 128}},
}

// Fig9 reproduces "Bandwidths of IOR with mixed process numbers": fixed
// 256 KB requests, phases issued by differing process counts.
func (c Config) Fig9() ([]BandwidthRow, *metrics.Table, error) {
	rows, err := parallelRows(c, len(fig9Mixes), func(cc Config, i int) (BandwidthRow, error) {
		mix := fig9Mixes[i]
		return cc.runBandwidthPoint(mix.label, func(op trace.Op) (trace.Trace, error) {
			return workload.IOR(workload.IORConfig{
				File: "ior.dat", Op: op,
				Sizes: []int64{256 * units.KB}, Procs: mix.procs,
				FileSize: cc.scaled(fig7FileSize), Shuffle: true, Seed: 9,
			})
		})
	})
	if err != nil {
		return nil, nil, err
	}
	return rows, bandwidthTable("Fig. 9: IOR bandwidth (MB/s), mixed process numbers, 256KB requests", rows), nil
}

// fig10Ratios are the server splits of Fig. 10 (total 8 servers).
var fig10Ratios = []struct {
	label string
	h, s  int
}{
	{"7h:1s", 7, 1},
	{"6h:2s", 6, 2},
	{"5h:3s", 5, 3},
	{"4h:4s", 4, 4},
}

// Fig10 reproduces "Bandwidths of IOR with various server ratios": 32
// processes, 128+256 KB mixed sizes, sweeping the HServer:SServer split.
func (c Config) Fig10() ([]BandwidthRow, *metrics.Table, error) {
	rows, err := parallelRows(c, len(fig10Ratios), func(cc Config, i int) (BandwidthRow, error) {
		ratio := fig10Ratios[i]
		cr := cc.withServers(ratio.h, ratio.s)
		return cr.runBandwidthPoint(ratio.label, func(op trace.Op) (trace.Trace, error) {
			return workload.IOR(workload.IORConfig{
				File: "ior.dat", Op: op,
				Sizes: []int64{128 * units.KB, 256 * units.KB}, Procs: []int{32},
				FileSize: cr.scaled(fig7FileSize), Shuffle: true, Seed: 10,
			})
		})
	})
	if err != nil {
		return nil, nil, err
	}
	return rows, bandwidthTable("Fig. 10: IOR bandwidth (MB/s) vs server ratio, 32 procs, 128+256KB", rows), nil
}

// fig11Procs are the process counts of Fig. 11.
var fig11Procs = []int{16, 32, 64}

// fig11RegionCount is HPIO's region count in the paper (before scaling).
const fig11RegionCount = 4096

// Fig11 reproduces "Bandwidths of HPIO with various process numbers":
// region sizes 16/32/64 KB, spacing 0, region count 4096.
func (c Config) Fig11() ([]BandwidthRow, *metrics.Table, error) {
	rows, err := parallelRows(c, len(fig11Procs), func(cc Config, i int) (BandwidthRow, error) {
		procs := fig11Procs[i]
		return cc.runBandwidthPoint(fmt.Sprintf("%dp", procs), func(op trace.Op) (trace.Trace, error) {
			return workload.HPIO(workload.HPIOConfig{
				File: "hpio.dat", Op: op, Procs: procs,
				RegionCount:   cc.scaledCount(fig11RegionCount),
				RegionSpacing: 0,
				RegionSizes:   []int64{16 * units.KB, 32 * units.KB, 64 * units.KB},
			})
		})
	})
	if err != nil {
		return nil, nil, err
	}
	return rows, bandwidthTable("Fig. 11: HPIO bandwidth (MB/s) vs process count, regions 16/32/64KB", rows), nil
}

// fig12aProcs are BTIO's (square) process counts.
var fig12aProcs = []int{9, 16, 25}

// Fig12a reproduces the BTIO aggregate write bandwidth: Class B and C
// request sizes interleaved over 40 steps.
func (c Config) Fig12a() ([]BandwidthRow, *metrics.Table, error) {
	rows, err := parallelRows(c, len(fig12aProcs), func(cc Config, i int) (BandwidthRow, error) {
		procs := fig12aProcs[i]
		return cc.runBandwidthPoint(fmt.Sprintf("%dp", procs), func(op trace.Op) (trace.Trace, error) {
			cfg := workload.DefaultBTIO(procs, op)
			cfg.TotalB = cc.scaled(cfg.TotalB)
			cfg.TotalC = cc.scaled(cfg.TotalC)
			return workload.BTIO(cfg)
		})
	})
	if err != nil {
		return nil, nil, err
	}
	return rows, bandwidthTable("Fig. 12a: BTIO bandwidth (MB/s), Class B+C interleaved", rows), nil
}

// fig12bLoops is the LANL loop count at scale 1 (256 KB per rank-loop).
const fig12bLoops = 2048

// Fig12b reproduces the LANL App2 replay: 8 processes, the three-request
// loop of Fig. 3.
func (c Config) Fig12b() ([]BandwidthRow, *metrics.Table, error) {
	row, err := c.runBandwidthPoint("lanl", func(op trace.Op) (trace.Trace, error) {
		return workload.LANL(workload.LANLConfig{
			File: "lanl.dat", Op: op, Procs: 8, Loops: c.scaledCount(fig12bLoops),
		})
	})
	if err != nil {
		return nil, nil, err
	}
	rows := []BandwidthRow{row}
	return rows, bandwidthTable("Fig. 12b: LANL App2 bandwidth (MB/s), 8 procs", rows), nil
}

// appRow runs a full mixed read+write application trace (LU, Cholesky)
// under every scheme; the single replay covers both ops, so Read and
// Write hold the respective per-direction bandwidths of the same run.
func (c Config) appRow(label string, mk func() (trace.Trace, error)) (BandwidthRow, error) {
	row := BandwidthRow{
		Label: label,
		Read:  make(map[layout.Scheme]float64),
		Write: make(map[layout.Scheme]float64),
	}
	tr, err := mk()
	if err != nil {
		return row, err
	}
	runs, err := c.RunAllSchemes(tr)
	if err != nil {
		return row, err
	}
	for s, r := range runs {
		row.Read[s] = r.Result.ReadBandwidth()
		row.Write[s] = r.Result.WriteBandwidth()
	}
	return row, nil
}

// fig13Slabs / fig13Panels are the LU/Cholesky sizes at scale 1.
const (
	fig13Slabs  = 1024
	fig13Panels = 2048
)

// Fig13a reproduces the LU decomposition replay: 8 processes, 8 files,
// fixed-size writes and varied reads.
func (c Config) Fig13a() ([]BandwidthRow, *metrics.Table, error) {
	cfg := workload.DefaultLU()
	cfg.Slabs = c.scaledCount(fig13Slabs)
	row, err := c.appRow("lu", func() (trace.Trace, error) { return workload.LU(cfg) })
	if err != nil {
		return nil, nil, err
	}
	rows := []BandwidthRow{row}
	return rows, bandwidthTable("Fig. 13a: LU decomposition bandwidth (MB/s), 8 procs", rows), nil
}

// Fig13b reproduces the sparse Cholesky replay: 8 processes, 8 files,
// wildly varied request sizes.
func (c Config) Fig13b() ([]BandwidthRow, *metrics.Table, error) {
	cfg := workload.DefaultCholesky()
	cfg.Panels = c.scaledCount(fig13Panels)
	row, err := c.appRow("cholesky", func() (trace.Trace, error) { return workload.Cholesky(cfg) })
	if err != nil {
		return nil, nil, err
	}
	rows := []BandwidthRow{row}
	return rows, bandwidthTable("Fig. 13b: sparse Cholesky bandwidth (MB/s), 8 procs", rows), nil
}
