package bench

import (
	"bytes"
	"testing"

	"mhafs/internal/fault"
	"mhafs/internal/layout"
)

// TestFigAdaptive is the adaptive-scheduling subsystem's end-to-end gate:
// every scenario × scheme × {static, +SASIO} cell completes; under the
// persistent straggler every scheme's adaptive replay strictly beats its
// static counterpart (the scheduler reroutes writes off the slow server);
// and under the no-fault scenario the scheduler stays close to idle — the
// adaptive completion within ±5% of the static one for every scheme.
func TestFigAdaptive(t *testing.T) {
	c := Default()
	c.Scale = 512
	rows, tables, err := c.FigAdaptive(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want completion + actions", len(tables))
	}
	want := fault.Scenarios()
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d scenarios", len(rows), len(want))
	}
	byScenario := make(map[fault.Scenario]AdaptiveRow, len(rows))
	for i, row := range rows {
		if row.Scenario != want[i] {
			t.Errorf("row %d scenario = %s, want %s", i, row.Scenario, want[i])
		}
		byScenario[row.Scenario] = row
		for _, s := range layout.AllSchemes() {
			if row.Static[s] <= 0 || row.Adaptive[s] <= 0 {
				t.Errorf("%s/%v: makespans static=%v adaptive=%v",
					row.Scenario, s, row.Static[s], row.Adaptive[s])
			}
		}
	}

	// No faults: the scheduler must not tax a healthy cluster. MHA's
	// balanced placement gives it nothing to act on at all.
	none := byScenario[fault.ScenarioNone]
	for _, s := range layout.AllSchemes() {
		static, adaptive := none.Static[s], none.Adaptive[s]
		if diff := adaptive - static; diff > 0.05*static || diff < -0.05*static {
			t.Errorf("none/%v: adaptive %v deviates more than 5%% from static %v", s, adaptive, static)
		}
	}
	if a := none.Actions[layout.MHA]; a != (AdaptiveActions{}) {
		t.Errorf("none/MHA: scheduler acted on a healthy balanced run: %+v", a)
	}

	// Persistent straggler: rerouting off the slow server must pay, for
	// every scheme.
	straggler := byScenario[fault.ScenarioStraggler]
	for _, s := range layout.AllSchemes() {
		if straggler.Adaptive[s] >= straggler.Static[s] {
			t.Errorf("straggler/%v: adaptive %v does not beat static %v",
				s, straggler.Adaptive[s], straggler.Static[s])
		}
		if straggler.Actions[s].Reroutes == 0 {
			t.Errorf("straggler/%v: no reroutes — the straggler was never detected", s)
		}
	}
}

// adaptiveFigure renders both adaptive tables at the given worker count.
func adaptiveFigure(t *testing.T, workers int) string {
	t.Helper()
	c := Default()
	c.Scale = 512
	c.Workers = workers
	_, tables, err := c.FigAdaptive(nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		if err := tb.Fprint(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// TestAdaptiveFigureWorkersIdentical: the rendered adaptive figure —
// including the speculation races and their cancellations — is
// byte-identical at every worker count.
func TestAdaptiveFigureWorkersIdentical(t *testing.T) {
	serial := adaptiveFigure(t, 1)
	for _, workers := range []int{2, 8} {
		if got := adaptiveFigure(t, workers); got != serial {
			t.Errorf("workers=%d: adaptive figure differs from serial run", workers)
		}
	}
}

// TestAdaptiveOffIsByteIdenticalPipeline: with Config.Adaptive unset no
// adaptive stage is installed and the resilient run's virtual time is
// exactly the historical one (the opt-in contract behind the committed
// goldens).
func TestAdaptiveOffIsByteIdenticalPipeline(t *testing.T) {
	c := Default()
	c.Scale = 512
	c.Faults = fault.ScenarioStraggler
	tr, err := c.faultWorkload()
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.RunScheme(layout.MHA, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.RunScheme(layout.MHA, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Makespan != b.Result.Makespan {
		t.Errorf("static replays diverge: %v vs %v", a.Result.Makespan, b.Result.Makespan)
	}
}
