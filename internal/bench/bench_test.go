package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mhafs/internal/layout"
	"mhafs/internal/metrics"
	"mhafs/internal/replay"
	"mhafs/internal/trace"
	"mhafs/internal/units"
	"mhafs/internal/workload"
)

// testConfig runs the suite at a higher scale divisor so tests stay fast;
// the shapes under test are scale-invariant.
func testConfig() Config {
	c := Default()
	c.Scale = 512
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	c := Default()
	c.Scale = 0
	if c.Validate() == nil {
		t.Error("zero scale accepted")
	}
	c = Default()
	c.RedirectLookup = -1
	if c.Validate() == nil {
		t.Error("negative lookup accepted")
	}
}

func TestRunSchemeBasics(t *testing.T) {
	c := testConfig()
	tr, err := workload.IOR(workload.IORConfig{
		File: "f", Op: trace.OpWrite,
		Sizes: []int64{64 * units.KB}, Procs: []int{8},
		FileSize: 8 * units.MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := c.RunScheme(layout.DEF, tr)
	if err != nil {
		t.Fatal(err)
	}
	if run.Result.Ops != len(tr) {
		t.Errorf("ops = %d, want %d", run.Result.Ops, len(tr))
	}
	if run.Result.Bandwidth() <= 0 {
		t.Error("no bandwidth measured")
	}
}

func TestFig3(t *testing.T) {
	tb := Fig3(2)
	if tb.Rows() != 6 {
		t.Errorf("Fig3 rows = %d", tb.Rows())
	}
	var buf bytes.Buffer
	if err := tb.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "131072") {
		t.Error("Fig3 missing the 128KB request")
	}
}

// Fig. 7 shapes: MHA ≥ HARL ≥ DEF on every mixed-size row; MHA ≈ HARL on
// the uniform 16KB row (MHA degrades to HARL); substantial MHA-over-DEF
// improvement.
func TestFig7Shapes(t *testing.T) {
	rows, tb, err := testConfig().Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || tb.Rows() != 8 {
		t.Fatalf("rows = %d / table %d", len(rows), tb.Rows())
	}
	for _, row := range rows {
		for _, dir := range []map[layout.Scheme]float64{row.Read, row.Write} {
			if !(dir[layout.MHA] >= 0.99*dir[layout.HARL]) {
				t.Errorf("%s: MHA %.1f below HARL %.1f", row.Label, dir[layout.MHA], dir[layout.HARL])
			}
			if !(dir[layout.HARL] > dir[layout.DEF]) {
				t.Errorf("%s: HARL %.1f not above DEF %.1f", row.Label, dir[layout.HARL], dir[layout.DEF])
			}
			if !(dir[layout.MHA] > 1.3*dir[layout.DEF]) {
				t.Errorf("%s: MHA %.1f lacks a substantial win over DEF %.1f",
					row.Label, dir[layout.MHA], dir[layout.DEF])
			}
		}
	}
	// Uniform 16KB: MHA within 10% of HARL (degenerates to it).
	u := rows[0]
	if r := u.Read[layout.MHA] / u.Read[layout.HARL]; r < 0.90 || r > 1.15 {
		t.Errorf("uniform 16KB: MHA/HARL read ratio %.2f, want ≈1", r)
	}
}

// Fig. 8 shapes: DEF and AAL skew load across server classes; HARL and
// MHA are nearly even.
func TestFig8Shapes(t *testing.T) {
	rows, tb, err := testConfig().Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 || tb.Rows() != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	imbalance := func(s layout.Scheme) float64 {
		var vals []float64
		for _, r := range rows {
			vals = append(vals, r.Time[s])
		}
		return metrics.LoadImbalance(vals)
	}
	def, harl, mha := imbalance(layout.DEF), imbalance(layout.HARL), imbalance(layout.MHA)
	if !(def > 1.5*harl) {
		t.Errorf("DEF imbalance %.2f should far exceed HARL %.2f", def, harl)
	}
	if !(def > 1.5*mha) {
		t.Errorf("DEF imbalance %.2f should far exceed MHA %.2f", def, mha)
	}
	if harl > 3.0 {
		t.Errorf("HARL imbalance %.2f should be moderate", harl)
	}
	if mha > 3.0 {
		t.Errorf("MHA imbalance %.2f should be moderate", mha)
	}
	// Every server must participate under MHA (the paper's Fig. 8 shows
	// non-zero, near-even bars on all eight servers).
	for _, r := range rows {
		if r.Time[layout.MHA] <= 0 {
			t.Errorf("server %s idle under MHA", r.Server)
		}
	}
}

// Fig. 9 shapes: MHA ≈ HARL on the uniform-process row, MHA wins on mixed
// rows, and bandwidth declines as process counts grow.
func TestFig9Shapes(t *testing.T) {
	rows, _, err := testConfig().Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, row := range rows {
		if i == 0 {
			if r := row.Read[layout.MHA] / row.Read[layout.HARL]; r < 0.9 || r > 1.15 {
				t.Errorf("uniform procs: MHA/HARL %.2f", r)
			}
			continue
		}
		if !(row.Read[layout.MHA] >= 0.99*row.Read[layout.HARL] &&
			row.Read[layout.MHA] > row.Read[layout.DEF]) {
			t.Errorf("%s: MHA read %.1f not leading (HARL %.1f, DEF %.1f)",
				row.Label, row.Read[layout.MHA], row.Read[layout.HARL], row.Read[layout.DEF])
		}
	}
	// Contention: the 32+128 mix must be slower than the 8-proc row for
	// the baseline.
	if !(rows[3].Read[layout.DEF] < rows[0].Read[layout.DEF]) {
		t.Errorf("DEF bandwidth should drop with process count: %.1f vs %.1f",
			rows[3].Read[layout.DEF], rows[0].Read[layout.DEF])
	}
}

// Fig. 10 shapes: MHA wins at every ratio, and its margin over HARL grows
// as SServers are added.
func TestFig10Shapes(t *testing.T) {
	rows, _, err := testConfig().Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if !(row.Read[layout.MHA] >= 0.99*row.Read[layout.HARL] &&
			row.Write[layout.MHA] >= 0.99*row.Write[layout.HARL]) {
			t.Errorf("%s: MHA not leading HARL", row.Label)
		}
		if !(row.Read[layout.MHA] > row.Read[layout.DEF]) {
			t.Errorf("%s: MHA not above DEF", row.Label)
		}
	}
	firstGain := rows[0].Read[layout.MHA] / rows[0].Read[layout.DEF]
	lastGain := rows[3].Read[layout.MHA] / rows[3].Read[layout.DEF]
	if !(lastGain > firstGain) {
		t.Errorf("MHA/DEF gain should grow with SServers: %.2f → %.2f", firstGain, lastGain)
	}
}

// Fig. 11 shapes: MHA beats the other three at every process count.
func TestFig11Shapes(t *testing.T) {
	rows, _, err := testConfig().Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		for _, s := range []layout.Scheme{layout.DEF, layout.AAL} {
			if !(row.Write[layout.MHA] > row.Write[s]) {
				t.Errorf("%s: MHA write %.1f not above %v %.1f",
					row.Label, row.Write[layout.MHA], s, row.Write[s])
			}
		}
		if !(row.Write[layout.MHA] >= 0.99*row.Write[layout.HARL]) {
			t.Errorf("%s: MHA below HARL", row.Label)
		}
	}
}

// Fig. 12 shapes: MHA leads for BTIO and LANL.
func TestFig12Shapes(t *testing.T) {
	c := testConfig()
	rowsA, _, err := c.Fig12a()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rowsA {
		if !(row.Write[layout.MHA] > row.Write[layout.DEF]) {
			t.Errorf("BTIO %s: MHA %.1f not above DEF %.1f",
				row.Label, row.Write[layout.MHA], row.Write[layout.DEF])
		}
	}
	rowsB, _, err := c.Fig12b()
	if err != nil {
		t.Fatal(err)
	}
	row := rowsB[0]
	for _, s := range []layout.Scheme{layout.DEF, layout.AAL, layout.HARL} {
		if !(row.Write[layout.MHA] >= 0.99*row.Write[s]) {
			t.Errorf("LANL: MHA write %.1f not leading %v %.1f",
				row.Write[layout.MHA], s, row.Write[s])
		}
	}
}

// Fig. 13 shapes: MHA leads for LU and Cholesky replays.
func TestFig13Shapes(t *testing.T) {
	c := testConfig()
	for name, fn := range map[string]func() ([]BandwidthRow, *metrics.Table, error){
		"lu":       c.Fig13a,
		"cholesky": c.Fig13b,
	} {
		rows, _, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		row := rows[0]
		for _, s := range []layout.Scheme{layout.DEF, layout.AAL, layout.HARL} {
			if !(row.Write[layout.MHA] >= 0.99*row.Write[s]) {
				t.Errorf("%s: MHA write %.1f not leading %v %.1f",
					name, row.Write[layout.MHA], s, row.Write[s])
			}
		}
	}
}

// Fig. 14 shapes: redirection costs a few percent at most and never helps.
func TestFig14Shapes(t *testing.T) {
	rows, tb, err := testConfig().Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || tb.Rows() != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The lookup delay can slightly de-synchronize ranks and reduce
		// queue contention, so a marginally negative "overhead" is
		// possible; anything beyond ±1% / +10% would be a real problem.
		if r.OverheadPct < -1 {
			t.Errorf("procs %d: overhead %.2f%% suspiciously negative", r.Procs, r.OverheadPct)
		}
		if r.OverheadPct > 10 {
			t.Errorf("procs %d: overhead %.2f%% too large to be acceptable", r.Procs, r.OverheadPct)
		}
		if r.RedirectBW > r.BaseBW*1.01 {
			t.Errorf("procs %d: redirection increased bandwidth by >1%%", r.Procs)
		}
	}
}

func TestMetaOverhead(t *testing.T) {
	rows, tb := MetaOverhead([]int64{4 * units.KB, 64 * units.KB})
	if len(rows) != 2 || tb.Rows() != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's worst case: 4KB requests → ~0.6% overhead.
	if math.Abs(rows[0].OverheadPct-0.586) > 0.01 {
		t.Errorf("4KB overhead = %.3f%%, want ≈0.586%%", rows[0].OverheadPct)
	}
	if rows[1].OverheadPct >= rows[0].OverheadPct {
		t.Error("larger requests must have lower metadata overhead")
	}
}

// Determinism: the whole Fig. 7 experiment reproduces bit-identical
// bandwidths across runs.
func TestFigDeterminism(t *testing.T) {
	c := testConfig()
	a, _, err := c.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := c.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for _, s := range layout.AllSchemes() {
			if a[i].Read[s] != b[i].Read[s] || a[i].Write[s] != b[i].Write[s] {
				t.Fatalf("row %d scheme %v not deterministic", i, s)
			}
		}
	}
}

// Cross-scale sanity: the headline ordering (MHA ≥ HARL > DEF) must hold
// at a different workload scale than the one the detailed shape tests
// use, guarding against scale-tuned results.
func TestFig7CrossScale(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-scale sweep is slow")
	}
	c := Default()
	c.Scale = 128
	rows, _, err := c.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		// On large-size mixes MHA and HARL land within a few percent of
		// each other (their layouts converge); the ordering against DEF is
		// the robust cross-scale claim.
		if !(row.Write[layout.MHA] >= 0.95*row.Write[layout.HARL]) {
			t.Errorf("scale 128 %s: MHA %.1f well below HARL %.1f",
				row.Label, row.Write[layout.MHA], row.Write[layout.HARL])
		}
		if !(row.Write[layout.MHA] > 1.2*row.Write[layout.DEF]) {
			t.Errorf("scale 128 %s: MHA %.1f lacks a win over DEF %.1f",
				row.Label, row.Write[layout.MHA], row.Write[layout.DEF])
		}
	}
}

// The headline MHA-over-DEF result must also hold under bulk-synchronous
// (LockStep) pacing, which is how the paper's applications actually run.
func TestLockStepPacingPreservesOrdering(t *testing.T) {
	c := testConfig()
	c.ReplayMode = replay.LockStep
	tr, err := workload.IOR(workload.IORConfig{
		File: "f", Op: trace.OpWrite,
		Sizes: []int64{128 * units.KB, 256 * units.KB}, Procs: []int{16},
		FileSize: 16 * units.MB, Shuffle: true, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	runs, err := c.RunAllSchemes(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !(runs[layout.MHA].Result.Bandwidth() > runs[layout.DEF].Result.Bandwidth()) {
		t.Errorf("lockstep: MHA %.1f not above DEF %.1f",
			runs[layout.MHA].Result.Bandwidth(), runs[layout.DEF].Result.Bandwidth())
	}
}
