package bench

import (
	"strings"
	"testing"
)

func TestStepAblation(t *testing.T) {
	rows, tb, err := testConfig().StepAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || tb.Rows() != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's trade-off: the finest step must not be slower-planning
	// than it is precise — concretely, the 4KB step's bandwidth should be
	// at least that of the coarsest step, and planning time should not
	// shrink when the grid gets finer.
	fine, coarse := rows[0], rows[len(rows)-1]
	if !strings.HasPrefix(fine.Variant, "step=4KB") {
		t.Fatalf("unexpected ordering: %+v", rows)
	}
	if fine.Bandwidth < 0.95*coarse.Bandwidth {
		t.Errorf("fine step bandwidth %.1f well below coarse %.1f", fine.Bandwidth, coarse.Bandwidth)
	}
	for _, r := range rows {
		if r.Bandwidth <= 0 || r.Regions <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
}

func TestGroupBoundAblation(t *testing.T) {
	rows, tb, err := testConfig().GroupBoundAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 || tb.Rows() != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Region counts must respect the bound and grow with it.
	if rows[0].Regions > 8 { // maxK=1 → at most 1 region per file (8 files)
		t.Errorf("maxK=1 produced %d regions", rows[0].Regions)
	}
	if !(rows[len(rows)-1].Regions >= rows[0].Regions) {
		t.Errorf("regions should not shrink as k grows: %+v", rows)
	}
	for _, r := range rows {
		if r.Bandwidth <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
}

func TestConcurrencyAblation(t *testing.T) {
	rows, tb, err := testConfig().ConcurrencyAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || tb.Rows() != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	withConc, blind := rows[0], rows[1]
	if withConc.Bandwidth <= 0 || blind.Bandwidth <= 0 {
		t.Fatalf("degenerate rows %+v", rows)
	}
	// Concurrency awareness must not hurt on the concurrent workload.
	if withConc.Bandwidth < 0.9*blind.Bandwidth {
		t.Errorf("concurrency-aware %.1f well below blind %.1f", withConc.Bandwidth, blind.Bandwidth)
	}
}

func TestStragglerAblation(t *testing.T) {
	rows, tb, err := testConfig().StragglerAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || tb.Rows() != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byVariant := map[string]float64{}
	for _, r := range rows {
		byVariant[r.Variant] = r.Bandwidth
	}
	// A degraded disk must cost bandwidth under both schemes...
	if !(byVariant["DEF straggler"] < byVariant["DEF healthy"]) {
		t.Error("DEF unaffected by the straggler")
	}
	if !(byVariant["MHA straggler"] < byVariant["MHA healthy"]) {
		t.Error("MHA unaffected by the straggler")
	}
	// ...and MHA must still beat DEF even degraded.
	if !(byVariant["MHA straggler"] > byVariant["DEF straggler"]) {
		t.Error("MHA lost its advantage under degradation")
	}
}
