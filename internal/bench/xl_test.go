package bench

import (
	"strings"
	"testing"

	"mhafs/internal/fault"
	"mhafs/internal/units"
)

// smallXL is a reduced tier that keeps the determinism matrix fast while
// still spanning several groups, apps and both ops.
func smallXL() XLConfig {
	return XLConfig{
		Groups:       8,
		HPerGroup:    2,
		SPerGroup:    1,
		AppsPerGroup: 2,
		ProcsPerApp:  4,
		Requests:     4000,
		Sizes:        []int64{16 * units.KB, 64 * units.KB},
		Batch:        true,
	}
}

// render flattens the deterministic table for comparison.
func render(t *testing.T, r XLResult) string {
	t.Helper()
	var sb strings.Builder
	if err := r.Table().Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// The XL determinism matrix: byte-identical deterministic output across
// shard counts {1, 2, 8} × worker counts {1, 4}, fault-free and under the
// outage scenario (per-group seeded injectors + resilience stages).
func TestRunXLDeterminismMatrix(t *testing.T) {
	for _, faults := range []string{"", "outage"} {
		base := smallXL()
		base.Faults = fault.Scenario(faults)
		ref, err := RunXL(base)
		if err != nil {
			t.Fatalf("faults=%q: %v", faults, err)
		}
		if ref.Requests != 4000 {
			t.Fatalf("faults=%q: replayed %d records, want 4000", faults, ref.Requests)
		}
		want := render(t, ref)
		for _, shards := range []int{1, 2, 8} {
			for _, workers := range []int{1, 4} {
				cfg := base
				cfg.Shards, cfg.Workers = shards, workers
				got, err := RunXL(cfg)
				if err != nil {
					t.Fatalf("faults=%q shards=%d workers=%d: %v", faults, shards, workers, err)
				}
				if s := render(t, got); s != want {
					t.Errorf("faults=%q shards=%d workers=%d: output diverged\n--- want\n%s\n--- got\n%s",
						faults, shards, workers, want, s)
				}
				if got.Events != ref.Events {
					t.Errorf("faults=%q shards=%d workers=%d: events %d, want %d",
						faults, shards, workers, got.Events, ref.Events)
				}
			}
		}
	}
}

// Batching must not change what moves — only how fast: same ops and
// bytes, and a strictly shorter makespan once per-message overheads are
// amortized.
func TestRunXLBatchingSpeedsUp(t *testing.T) {
	on := smallXL()
	off := on
	off.Batch = false
	ron, err := RunXL(on)
	if err != nil {
		t.Fatal(err)
	}
	roff, err := RunXL(off)
	if err != nil {
		t.Fatal(err)
	}
	if ron.Bytes != roff.Bytes || ron.Requests != roff.Requests {
		t.Fatalf("batching changed the workload: %d/%d bytes, %d/%d requests",
			ron.Bytes, roff.Bytes, ron.Requests, roff.Requests)
	}
	if ron.Makespan >= roff.Makespan {
		t.Fatalf("batched makespan %.6f not below unbatched %.6f", ron.Makespan, roff.Makespan)
	}
}

func TestXLConfigValidate(t *testing.T) {
	ok := smallXL()
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*XLConfig){
		func(c *XLConfig) { c.Groups = 0 },
		func(c *XLConfig) { c.HPerGroup, c.SPerGroup = 0, 0 },
		func(c *XLConfig) { c.AppsPerGroup = 0 },
		func(c *XLConfig) { c.ProcsPerApp = -1 },
		func(c *XLConfig) { c.Requests = 0 },
		func(c *XLConfig) { c.Faults = "no-such-scenario" },
	}
	for i, mutate := range bad {
		c := smallXL()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: config %+v validated", i, c)
		}
	}
}
