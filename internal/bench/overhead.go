package bench

import (
	"fmt"

	"mhafs/internal/layout"
	"mhafs/internal/metrics"
	"mhafs/internal/mpiio"
	"mhafs/internal/pfs"
	"mhafs/internal/reorder"
	"mhafs/internal/replay"
	"mhafs/internal/trace"
	"mhafs/internal/units"
	"mhafs/internal/workload"
)

// Fig14Row is one process count of the redirection-overhead experiment.
type Fig14Row struct {
	Procs       int
	BaseBW      float64 // MB/s without redirection
	RedirectBW  float64 // MB/s with redirection to the original layout
	OverheadPct float64 // (baseTime→redirectTime) slowdown in percent
}

// fig14Procs are the process counts of Fig. 14.
var fig14Procs = []int{8, 32, 128}

// Fig14 reproduces the redirection-overhead measurement: IOR with mixed
// 4 KB and 64 KB requests is replayed twice — once directly, once through
// a redirector whose DRT is intentionally empty so every request is
// redirected back to the original I/O system. The difference is pure
// middleware overhead.
func (c Config) Fig14() ([]Fig14Row, *metrics.Table, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	rows, err := parallelRows(c, len(fig14Procs), func(cc Config, i int) (Fig14Row, error) {
		procs := fig14Procs[i]
		tr, err := workloadFig14(cc, procs)
		if err != nil {
			return Fig14Row{}, err
		}
		base, err := cc.replayPlain(tr, false)
		if err != nil {
			return Fig14Row{}, err
		}
		redir, err := cc.replayPlain(tr, true)
		if err != nil {
			return Fig14Row{}, err
		}
		row := Fig14Row{
			Procs:      procs,
			BaseBW:     base.Bandwidth(),
			RedirectBW: redir.Bandwidth(),
		}
		if base.Makespan > 0 {
			row.OverheadPct = (redir.Makespan - base.Makespan) / base.Makespan * 100
		}
		return row, nil
	})
	if err != nil {
		return nil, nil, err
	}
	tb := metrics.NewTable("Fig. 14: MHA redirection overhead, IOR 4+64KB",
		"procs", "base MB/s", "redirected MB/s", "overhead %")
	for _, r := range rows {
		tb.AddRow(r.Procs, r.BaseBW, r.RedirectBW, r.OverheadPct)
	}
	return rows, tb, nil
}

// workloadFig14 builds the Fig. 14 workload: IOR writes with mixed 4 KB
// and 64 KB request sizes.
func workloadFig14(c Config, procs int) (trace.Trace, error) {
	return workload.IOR(workload.IORConfig{
		File: "ior.dat", Op: trace.OpWrite,
		Sizes:    []int64{4 * units.KB, 64 * units.KB},
		Procs:    []int{procs},
		FileSize: c.scaled(fig7FileSize) / 4,
		Shuffle:  true, Seed: 14,
	})
}

// replayPlain runs a trace on a fresh cluster, optionally through an
// identity redirector (empty DRT) charging the configured lookup time.
func (c Config) replayPlain(tr trace.Trace, redirect bool) (replay.Result, error) {
	cluster, err := pfs.New(c.Cluster)
	if err != nil {
		return replay.Result{}, err
	}
	for _, f := range tr.Files() {
		if _, err := cluster.CreateDefault(f); err != nil {
			return replay.Result{}, err
		}
	}
	mw := mpiio.New(cluster)
	if redirect {
		placement, err := reorder.Apply(cluster, layout.Plan{Scheme: layout.MHA}, reorder.Options{})
		if err != nil {
			return replay.Result{}, err
		}
		defer placement.Close()
		mw.SetRedirector(reorder.NewRedirector(placement.DRT, c.RedirectLookup))
	}
	return replay.RunWith(mw, tr, replay.Options{Mode: c.ReplayMode})
}

// MetaOverheadRow is the analytic meta-data space computation of §V-E2.
type MetaOverheadRow struct {
	RequestSize int64
	EntryBytes  int64
	MaxEntries  int64 // per GB of storage
	OverheadPct float64
}

// drtEntryBytes is the paper's DRT entry size: six 4-byte variables.
const drtEntryBytes = 6 * 4

// MetaOverhead reproduces the meta-data space analysis: with S GB of
// storage and every request at the given size, the DRT holds at most
// S/size entries of 24 bytes — 0.6 % of the data space in the worst case
// (4 KB requests).
func MetaOverhead(requestSizes []int64) ([]MetaOverheadRow, *metrics.Table) {
	var rows []MetaOverheadRow
	for _, sz := range requestSizes {
		perGB := int64(units.GB) / sz
		rows = append(rows, MetaOverheadRow{
			RequestSize: sz,
			EntryBytes:  drtEntryBytes,
			MaxEntries:  perGB,
			OverheadPct: float64(drtEntryBytes) / float64(sz) * 100,
		})
	}
	tb := metrics.NewTable("Meta-data space overhead (§V-E2)",
		"request size", "entry bytes", "entries/GB", "overhead %")
	for _, r := range rows {
		tb.AddRow(units.Bytes(r.RequestSize).String(), r.EntryBytes, r.MaxEntries,
			fmt.Sprintf("%.3f", r.OverheadPct))
	}
	return rows, tb
}
