package workload

import (
	"testing"

	"mhafs/internal/trace"
	"mhafs/internal/units"
)

func TestXLApp(t *testing.T) {
	tr, err := XLApp(XLConfig{File: "x", Procs: 4, Requests: 101,
		Sizes: []int64{16 * units.KB, 64 * units.KB}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr) != 101 {
		t.Fatalf("records = %d, want 101", len(tr))
	}
	writes := 51
	for i, r := range tr[:writes] {
		if r.Op != trace.OpWrite {
			t.Fatalf("record %d: op %v, want write", i, r.Op)
		}
	}
	// Reads mirror the write extents in write order, shifted in time.
	for i, r := range tr[writes:] {
		w := tr[i]
		if r.Op != trace.OpRead {
			t.Fatalf("read %d: op %v", i, r.Op)
		}
		if r.Offset != w.Offset || r.Size != w.Size || r.Rank != w.Rank {
			t.Fatalf("read %d = %+v does not mirror write %+v", i, r, w)
		}
		if r.Time <= w.Time {
			t.Fatalf("read %d at %v not after its write at %v", i, r.Time, w.Time)
		}
	}
	// Write extents are disjoint and consecutive.
	var off int64
	for i, r := range tr[:writes] {
		if r.Offset != off {
			t.Fatalf("write %d offset %d, want %d", i, r.Offset, off)
		}
		off += r.Size
	}
	// Deterministic: regeneration is identical.
	tr2, err := XLApp(XLConfig{File: "x", Procs: 4, Requests: 101,
		Sizes: []int64{16 * units.KB, 64 * units.KB}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr {
		if tr[i] != tr2[i] {
			t.Fatalf("record %d differs between generations", i)
		}
	}
}

func TestXLAppValidation(t *testing.T) {
	cases := []XLConfig{
		{File: "", Procs: 1, Requests: 1},
		{File: "x", Procs: 0, Requests: 1},
		{File: "x", Procs: 1, Requests: 0},
		{File: "x", Procs: 1, Requests: 1, Sizes: []int64{0}},
	}
	for i, c := range cases {
		if _, err := XLApp(c); err == nil {
			t.Errorf("case %d: config %+v validated", i, c)
		}
	}
}
