package workload

import (
	"fmt"
	"math/rand"

	"mhafs/internal/trace"
	"mhafs/internal/units"
)

// LANL App2 request sizes (Fig. 3): each loop issues one small 16-byte
// request followed by two large requests of 128K−16 and 128K bytes.
const (
	LANLSmall  = 16
	LANLLarge1 = 128*units.KB - 16
	LANLLarge2 = 128 * units.KB
)

// LANLSequence returns the request-size sequence of n loops — the data
// behind Fig. 3.
func LANLSequence(loops int) []int64 {
	out := make([]int64, 0, 3*loops)
	for i := 0; i < loops; i++ {
		out = append(out, LANLSmall, LANLLarge1, LANLLarge2)
	}
	return out
}

// LANLConfig parameterizes the LANL App2 replayer: processes iterate
// loops, each issuing the three characteristic requests against a shared
// file, in a non-uniform way at different file locations.
type LANLConfig struct {
	File  string
	Op    trace.Op
	Procs int
	Loops int
}

// Validate checks the configuration.
func (c LANLConfig) Validate() error {
	if c.File == "" {
		return fmt.Errorf("workload: lanl: empty file name")
	}
	if c.Procs <= 0 {
		return fmt.Errorf("workload: lanl: non-positive process count")
	}
	if c.Loops <= 0 {
		return fmt.Errorf("workload: lanl: non-positive loop count")
	}
	return nil
}

// LANL generates the trace. Each loop contributes three concurrency
// epochs — all ranks issue their 16-byte records together, then the
// 128K−16 records, then the 128K records — at per-rank offsets that
// interleave the three record streams across the shared file, exactly the
// structure Fig. 3 plots.
func LANL(cfg LANLConfig) (trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sizes := []int64{LANLSmall, LANLLarge1, LANLLarge2}
	perLoop := int64(LANLSmall + LANLLarge1 + LANLLarge2) // per rank
	var tr trace.Trace
	epoch := 0
	for loop := 0; loop < cfg.Loops; loop++ {
		var within int64
		for _, size := range sizes {
			t := float64(epoch) * epochGap
			for r := 0; r < cfg.Procs; r++ {
				base := (int64(loop)*int64(cfg.Procs) + int64(r)) * perLoop
				tr = append(tr, trace.Record{
					PID: 1000 + r, Rank: r, FD: 3, File: cfg.File, Op: cfg.Op,
					Offset: base + within, Size: size,
					Time: t + float64(r)*rankJitter,
				})
			}
			within += size
			epoch++
		}
	}
	return tr, nil
}

// LU decomposition trace (§V-D): dense out-of-core LU of an 8192×8192
// double matrix with 64-column slabs, 8 processes, one file per process,
// synchronous I/O. Writes are fixed at 524544 bytes; reads range from
// 6272 to 524544 bytes (re-reading previously factored panels).
const (
	LUWriteSize = 524544
	LUReadMin   = 6272
	LUReadMax   = 524544
)

// LUConfig parameterizes the LU generator.
type LUConfig struct {
	FilePrefix string // per-process files "<prefix>.<rank>"
	Procs      int
	Slabs      int // 8192/64 = 128 in the paper's run
	Seed       int64
}

// DefaultLU mirrors the paper: 8 processes, 128 slabs.
func DefaultLU() LUConfig {
	return LUConfig{FilePrefix: "lu.mat", Procs: 8, Slabs: 128, Seed: 1}
}

// Validate checks the configuration.
func (c LUConfig) Validate() error {
	if c.FilePrefix == "" {
		return fmt.Errorf("workload: lu: empty file prefix")
	}
	if c.Procs <= 0 {
		return fmt.Errorf("workload: lu: non-positive process count")
	}
	if c.Slabs <= 0 {
		return fmt.Errorf("workload: lu: non-positive slab count")
	}
	return nil
}

// LU generates the trace: for slab k each process re-reads a growing
// prefix of its factored panels (sizes spanning the documented read
// range) and then writes the slab (fixed size). Each slab is one
// read epoch plus one write epoch.
func LU(cfg LUConfig) (trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var tr trace.Trace
	writeCursor := make([]int64, cfg.Procs)
	epoch := 0
	for k := 0; k < cfg.Slabs; k++ {
		// Read phase: panel re-reads shrink as the active sub-matrix
		// shrinks; sample the documented range, biased by progress.
		t := float64(epoch) * epochGap
		epoch++
		if k > 0 {
			for r := 0; r < cfg.Procs; r++ {
				file := fmt.Sprintf("%s.%d", cfg.FilePrefix, r)
				// Read one earlier slab region at a partial size.
				slab := rng.Intn(k)
				frac := float64(k-slab) / float64(cfg.Slabs)
				size := int64(float64(LUReadMin) + frac*float64(LUReadMax-LUReadMin))
				size = align16(size)
				if size < LUReadMin {
					size = LUReadMin
				}
				tr = append(tr, trace.Record{
					PID: 1000 + r, Rank: r, FD: 3, File: file, Op: trace.OpRead,
					Offset: int64(slab) * LUWriteSize, Size: size,
					Time: t + float64(r)*rankJitter,
				})
			}
		}
		// Write phase: one fixed-size slab append per process.
		t = float64(epoch) * epochGap
		epoch++
		for r := 0; r < cfg.Procs; r++ {
			file := fmt.Sprintf("%s.%d", cfg.FilePrefix, r)
			tr = append(tr, trace.Record{
				PID: 1000 + r, Rank: r, FD: 3, File: file, Op: trace.OpWrite,
				Offset: writeCursor[r], Size: LUWriteSize,
				Time: t + float64(r)*rankJitter,
			})
			writeCursor[r] += LUWriteSize
		}
	}
	return tr, nil
}

// Sparse Cholesky trace (§V-D): panel-based sparse Cholesky factorization,
// 8 processes, one file per process, synchronous I/O. Reads range from 2
// bytes to 4206976 bytes; writes from 131556 to 4206976 bytes; the size
// distribution varies considerably with only a small number of large
// requests.
const (
	CholReadMin  = 2
	CholReadMax  = 4206976
	CholWriteMin = 131556
	CholWriteMax = 4206976
)

// CholeskyConfig parameterizes the generator.
type CholeskyConfig struct {
	FilePrefix string
	Procs      int
	Panels     int
	Seed       int64
}

// DefaultCholesky mirrors the paper's scenario: 8 clients, panel-wise
// access.
func DefaultCholesky() CholeskyConfig {
	return CholeskyConfig{FilePrefix: "chol.mat", Procs: 8, Panels: 64, Seed: 1}
}

// Validate checks the configuration.
func (c CholeskyConfig) Validate() error {
	if c.FilePrefix == "" {
		return fmt.Errorf("workload: cholesky: empty file prefix")
	}
	if c.Procs <= 0 {
		return fmt.Errorf("workload: cholesky: non-positive process count")
	}
	if c.Panels <= 0 {
		return fmt.Errorf("workload: cholesky: non-positive panel count")
	}
	return nil
}

// Cholesky generates the trace: per panel, each process issues several
// small metadata/index reads, occasionally a large panel read (the "small
// number of large requests"), then writes the factored panel at a size
// drawn from the documented write range, skewed toward the minimum.
func Cholesky(cfg CholeskyConfig) (trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var tr trace.Trace
	cursor := make([]int64, cfg.Procs)
	epoch := 0
	for k := 0; k < cfg.Panels; k++ {
		// Small index reads (sizes 2 B – ~8 KB, heavily skewed small).
		t := float64(epoch) * epochGap
		epoch++
		for r := 0; r < cfg.Procs; r++ {
			file := fmt.Sprintf("%s.%d", cfg.FilePrefix, r)
			size := int64(CholReadMin + rng.Intn(8192))
			off := int64(0)
			if cursor[r] > size {
				off = rng.Int63n(cursor[r] - size + 1)
			}
			tr = append(tr, trace.Record{
				PID: 1000 + r, Rank: r, FD: 3, File: file, Op: trace.OpRead,
				Offset: off, Size: size, Time: t + float64(r)*rankJitter,
			})
		}
		// Occasionally a large dependent-panel read (1 in 8 panels).
		if k%8 == 7 {
			t = float64(epoch) * epochGap
			epoch++
			for r := 0; r < cfg.Procs; r++ {
				file := fmt.Sprintf("%s.%d", cfg.FilePrefix, r)
				size := int64(CholReadMax/2 + rng.Intn(CholReadMax/2))
				tr = append(tr, trace.Record{
					PID: 1000 + r, Rank: r, FD: 3, File: file, Op: trace.OpRead,
					Offset: 0, Size: size, Time: t + float64(r)*rankJitter,
				})
			}
		}
		// Panel write: sizes grow with panel fill-in, within the range.
		t = float64(epoch) * epochGap
		epoch++
		for r := 0; r < cfg.Procs; r++ {
			file := fmt.Sprintf("%s.%d", cfg.FilePrefix, r)
			span := CholWriteMax - CholWriteMin
			size := int64(CholWriteMin) + int64(rng.Float64()*rng.Float64()*float64(span))
			tr = append(tr, trace.Record{
				PID: 1000 + r, Rank: r, FD: 3, File: file, Op: trace.OpWrite,
				Offset: cursor[r], Size: size, Time: t + float64(r)*rankJitter,
			})
			cursor[r] += size
		}
	}
	return tr, nil
}
