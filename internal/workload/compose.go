package workload

import (
	"fmt"

	"mhafs/internal/pattern"
	"mhafs/internal/trace"
)

// Trace composition utilities: the paper's modified benchmarks are
// compositions of simpler patterns ("we modify IOR to run it with various
// request sizes", "each process issues file requests at the sizes of those
// in Class B and C in an interleaved fashion"). These helpers build such
// mixtures from generator outputs.

// Shift returns a copy of the trace with all offsets displaced by delta
// and all time stamps by dt. Negative results are rejected.
func Shift(t trace.Trace, delta int64, dt float64) (trace.Trace, error) {
	out := t.Clone()
	for i := range out {
		out[i].Offset += delta
		out[i].Time += dt
		if out[i].Offset < 0 || out[i].Time < 0 {
			return nil, fmt.Errorf("workload: shift makes record %d negative", i)
		}
	}
	return out, nil
}

// Rename returns a copy with every record's file name replaced.
func Rename(t trace.Trace, from, to string) trace.Trace {
	out := t.Clone()
	for i := range out {
		if out[i].File == from {
			out[i].File = to
		}
	}
	return out
}

// Concat appends b after a in both file space and time: b's offsets are
// shifted past a's highest accessed byte (per file), and b's time stamps
// past a's last epoch.
func Concat(a, b trace.Trace) (trace.Trace, error) {
	if len(a) == 0 {
		return b.Clone(), nil
	}
	if len(b) == 0 {
		return a.Clone(), nil
	}
	spans := make(map[string]int64)
	var tmax float64
	for _, r := range a {
		if end := r.End(); end > spans[r.File] {
			spans[r.File] = end
		}
		if r.Time > tmax {
			tmax = r.Time
		}
	}
	out := a.Clone()
	for _, r := range b {
		r.Offset += spans[r.File]
		r.Time += tmax + epochGap
		out = append(out, r)
	}
	return out, nil
}

// Interleave merges two traces phase by phase: epochs alternate a, b, a,
// b…, re-stamped onto a common timeline, with each trace's offsets
// preserved (the traces should target distinct files or disjoint ranges).
func Interleave(a, b trace.Trace, window float64) trace.Trace {
	ea := pattern.Epochs(a, window)
	eb := pattern.Epochs(b, window)
	var out trace.Trace
	t := 0.0
	for i := 0; i < len(ea) || i < len(eb); i++ {
		for _, eps := range [][][]trace.Record{ea, eb} {
			if i >= len(eps) {
				continue
			}
			for j, r := range eps[i] {
				r.Time = t + float64(j)*rankJitter
				out = append(out, r)
			}
			t += epochGap
		}
	}
	return out
}
