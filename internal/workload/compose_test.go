package workload

import (
	"testing"

	"mhafs/internal/pattern"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

func seqTrace(file string, n int, size int64) trace.Trace {
	var tr trace.Trace
	for i := 0; i < n; i++ {
		tr = append(tr, trace.Record{Rank: i % 4, File: file, Op: trace.OpWrite,
			Offset: int64(i) * size, Size: size, Time: float64(i / 4)})
	}
	return tr
}

func TestShift(t *testing.T) {
	tr := seqTrace("f", 4, 4096)
	out, err := Shift(tr, 1<<20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Offset != 1<<20 || out[0].Time != 10 {
		t.Errorf("shifted record = %+v", out[0])
	}
	if tr[0].Offset != 0 {
		t.Error("Shift mutated the input")
	}
	if _, err := Shift(tr, -1, 0); err == nil {
		t.Error("negative offset shift accepted")
	}
	if _, err := Shift(tr, 0, -1); err == nil {
		t.Error("negative time shift accepted")
	}
}

func TestRename(t *testing.T) {
	tr := seqTrace("old", 3, 64)
	out := Rename(tr, "old", "new")
	for _, r := range out {
		if r.File != "new" {
			t.Fatalf("record kept name %q", r.File)
		}
	}
	if tr[0].File != "old" {
		t.Error("Rename mutated the input")
	}
	same := Rename(tr, "absent", "x")
	if same[0].File != "old" {
		t.Error("unrelated names changed")
	}
}

func TestConcat(t *testing.T) {
	a := seqTrace("f", 4, 4096)
	b := seqTrace("f", 4, 8192)
	out, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 8 {
		t.Fatalf("len = %d", len(out))
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// b's records must start after a's span (4*4096).
	for _, r := range out[4:] {
		if r.Offset < 4*4096 {
			t.Fatalf("b record not shifted: %+v", r)
		}
		if r.Time <= out[3].Time {
			t.Fatalf("b record not later in time: %+v", r)
		}
	}
	// No overlaps overall.
	sorted := out.Clone()
	sorted.SortByOffset()
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Offset < sorted[i-1].End() {
			t.Fatal("concat created overlapping extents")
		}
	}
	// Identity cases.
	if got, _ := Concat(nil, a); len(got) != len(a) {
		t.Error("Concat(nil, a) wrong")
	}
	if got, _ := Concat(a, nil); len(got) != len(a) {
		t.Error("Concat(a, nil) wrong")
	}
}

func TestInterleave(t *testing.T) {
	a := seqTrace("fa", 8, 4*units.KB)  // 2 epochs of 4
	b := seqTrace("fb", 8, 64*units.KB) // 2 epochs of 4
	out := Interleave(a, b, pattern.DefaultEpochWindow)
	if len(out) != 16 {
		t.Fatalf("len = %d", len(out))
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	eps := pattern.Epochs(out, pattern.DefaultEpochWindow)
	if len(eps) != 4 {
		t.Fatalf("epochs = %d, want 4 (a,b,a,b)", len(eps))
	}
	// Alternating files per epoch.
	wantFiles := []string{"fa", "fb", "fa", "fb"}
	for i, ep := range eps {
		for _, r := range ep {
			if r.File != wantFiles[i] {
				t.Fatalf("epoch %d has %s, want %s", i, r.File, wantFiles[i])
			}
		}
	}
	// Ragged inputs: extra epochs of the longer trace trail at the end.
	c := seqTrace("fc", 12, units.KB) // 3 epochs
	out2 := Interleave(a, c, pattern.DefaultEpochWindow)
	eps2 := pattern.Epochs(out2, pattern.DefaultEpochWindow)
	if len(eps2) != 5 {
		t.Fatalf("ragged epochs = %d, want 5", len(eps2))
	}
	if Interleave(nil, nil, 1) != nil {
		t.Error("empty interleave should be nil")
	}
}
