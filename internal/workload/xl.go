package workload

import (
	"fmt"

	"mhafs/internal/trace"
	"mhafs/internal/units"
)

// XLConfig parameterizes the XL-tier generator: a synthetic application
// sized for the ≥10⁶-request simulation tier rather than any benchmark in
// the paper. The access structure is the common checkpoint-then-analyze
// shape: every rank writes its partition of a shared file phase by phase,
// then the same extents are read back in the same phase order.
type XLConfig struct {
	File  string
	Procs int
	// Requests is the total record count; the first half (rounded up) are
	// writes, the rest read the written extents back in write order.
	Requests int
	// Sizes rotate per phase, giving the trace the size heterogeneity the
	// layout schemes care about. Empty means 64KB.
	Sizes []int64
}

// Validate checks the configuration.
func (c XLConfig) Validate() error {
	if c.File == "" {
		return fmt.Errorf("workload: xl: empty file name")
	}
	if c.Procs <= 0 {
		return fmt.Errorf("workload: xl: non-positive process count %d", c.Procs)
	}
	if c.Requests <= 0 {
		return fmt.Errorf("workload: xl: non-positive request count %d", c.Requests)
	}
	for _, s := range c.Sizes {
		if s <= 0 {
			return fmt.Errorf("workload: xl: non-positive request size %d", s)
		}
	}
	return nil
}

// XLApp generates the trace: write phases of one record per rank at
// consecutive disjoint offsets, then read phases re-walking the same
// extents with the same ranks. Fully deterministic — same config, same
// bytes — which the XL determinism matrix depends on.
func XLApp(cfg XLConfig) (trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sizes := cfg.Sizes
	if len(sizes) == 0 {
		sizes = []int64{64 * units.KB}
	}
	writes := (cfg.Requests + 1) / 2
	reads := cfg.Requests - writes
	tr := make(trace.Trace, 0, cfg.Requests)
	var off int64
	for k := 0; k < writes; k++ {
		phase, rank := k/cfg.Procs, k%cfg.Procs
		size := sizes[phase%len(sizes)]
		tr = append(tr, trace.Record{
			PID: 1000 + rank, Rank: rank, FD: 3, File: cfg.File, Op: trace.OpWrite,
			Offset: off, Size: size,
			Time: float64(phase)*epochGap + float64(rank)*rankJitter,
		})
		off += size
	}
	// Read phases mirror the write phases, shifted past the write span.
	readBase := (float64((writes-1)/cfg.Procs) + 1) * epochGap
	for k := 0; k < reads; k++ {
		r := tr[k]
		r.Op = trace.OpRead
		r.Time += readBase
		tr = append(tr, r)
	}
	return tr, nil
}
