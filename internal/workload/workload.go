// Package workload synthesizes the I/O traces of the benchmarks and
// applications in the MHA paper's evaluation (§V): the IOR and HPIO
// micro-benchmarks, the BTIO macro-benchmark, and the LANL App2, LU
// decomposition and sparse Cholesky application traces.
//
// The real traces are not redistributable; each generator reproduces the
// access structure the paper documents — request sizes, concurrency,
// interleaving, and file organization — which is everything the layout
// schemes observe. All generators are deterministic under a fixed seed.
package workload

import (
	"fmt"
	"math/rand"

	"mhafs/internal/trace"
	"mhafs/internal/units"
)

// epochGap is the virtual-time distance between I/O phases; it exceeds
// every concurrency-detection window in use so distinct phases never
// merge.
const epochGap = 1.0

// rankJitter spaces same-phase requests a few microseconds apart — within
// the same concurrency epoch but with a deterministic order.
const rankJitter = 1e-6

// IORConfig parameterizes the IOR-like generator. The paper runs IOR with
// a shared file, MPI-IO, and modifications that mix request sizes (Fig. 7)
// or process counts (Fig. 9) across the phases of a run.
type IORConfig struct {
	File string
	Op   trace.Op

	// Sizes rotate per phase: phase p uses Sizes[p % len(Sizes)]. One
	// entry reproduces vanilla IOR; several reproduce "mixed request
	// sizes".
	Sizes []int64

	// Procs rotate per phase like Sizes, reproducing "mixed numbers of
	// processes". MaxProcs ranks exist overall.
	Procs []int

	// FileSize bounds the bytes accessed; generation stops at the first
	// phase boundary at or beyond it.
	FileSize int64

	// Shuffle randomizes the phase order (IOR's random-offset mode as the
	// paper uses it: "each process issues random requests at multiple
	// sizes"). Extents remain disjoint.
	Shuffle bool
	Seed    int64
}

// Validate checks the configuration.
func (c IORConfig) Validate() error {
	if c.File == "" {
		return fmt.Errorf("workload: ior: empty file name")
	}
	if len(c.Sizes) == 0 {
		return fmt.Errorf("workload: ior: no request sizes")
	}
	for _, s := range c.Sizes {
		if s <= 0 {
			return fmt.Errorf("workload: ior: non-positive request size %d", s)
		}
	}
	if len(c.Procs) == 0 {
		return fmt.Errorf("workload: ior: no process counts")
	}
	for _, p := range c.Procs {
		if p <= 0 {
			return fmt.Errorf("workload: ior: non-positive process count %d", p)
		}
	}
	if c.FileSize <= 0 {
		return fmt.Errorf("workload: ior: non-positive file size")
	}
	return nil
}

// IOR generates the trace.
func IOR(cfg IORConfig) (trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var tr trace.Trace
	var off int64
	phase := 0
	for off < cfg.FileSize {
		size := cfg.Sizes[phase%len(cfg.Sizes)]
		procs := cfg.Procs[phase%len(cfg.Procs)]
		t := float64(phase) * epochGap
		for r := 0; r < procs && off < cfg.FileSize; r++ {
			tr = append(tr, trace.Record{
				PID: 1000 + r, Rank: r, FD: 3, File: cfg.File, Op: cfg.Op,
				Offset: off, Size: size, Time: t + float64(r)*rankJitter,
			})
			off += size
		}
		phase++
	}
	if cfg.Shuffle {
		shufflePhases(tr, cfg.Seed)
	}
	return tr, nil
}

// shufflePhases permutes the epoch order while keeping each epoch's
// records together, re-stamping times so epoch boundaries survive.
func shufflePhases(tr trace.Trace, seed int64) {
	if len(tr) == 0 {
		return
	}
	var phases [][]trace.Record
	cur := []trace.Record{tr[0]}
	for _, r := range tr[1:] {
		if r.Time-cur[0].Time >= epochGap/2 {
			phases = append(phases, cur)
			cur = nil
		}
		cur = append(cur, r)
	}
	phases = append(phases, cur)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(phases), func(i, j int) { phases[i], phases[j] = phases[j], phases[i] })
	i := 0
	for p, phase := range phases {
		for j, rec := range phase {
			rec.Time = float64(p)*epochGap + float64(j)*rankJitter
			tr[i] = rec
			i++
		}
	}
}

// HPIOConfig parameterizes the HPIO-like generator. HPIO accesses
// RegionCount regions per process, each RegionSizes[i%len] bytes, with
// RegionSpacing bytes between consecutive regions. The paper's setup:
// region count 4096, spacing 0, region sizes 16/32/64 KB, 16–64
// processes, shared file.
type HPIOConfig struct {
	File string
	Op   trace.Op

	Procs         int
	RegionCount   int
	RegionSpacing int64
	RegionSizes   []int64
}

// Validate checks the configuration.
func (c HPIOConfig) Validate() error {
	if c.File == "" {
		return fmt.Errorf("workload: hpio: empty file name")
	}
	if c.Procs <= 0 {
		return fmt.Errorf("workload: hpio: non-positive process count")
	}
	if c.RegionCount <= 0 {
		return fmt.Errorf("workload: hpio: non-positive region count")
	}
	if c.RegionSpacing < 0 {
		return fmt.Errorf("workload: hpio: negative region spacing")
	}
	if len(c.RegionSizes) == 0 {
		return fmt.Errorf("workload: hpio: no region sizes")
	}
	for _, s := range c.RegionSizes {
		if s <= 0 {
			return fmt.Errorf("workload: hpio: non-positive region size %d", s)
		}
	}
	return nil
}

// HPIO generates the trace: region i of rank r lives at the interleaved
// offset implied by round-robin rank ordering; each region round is one
// concurrency epoch.
func HPIO(cfg HPIOConfig) (trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var tr trace.Trace
	var off int64
	for i := 0; i < cfg.RegionCount; i++ {
		size := cfg.RegionSizes[i%len(cfg.RegionSizes)]
		t := float64(i) * epochGap
		for r := 0; r < cfg.Procs; r++ {
			tr = append(tr, trace.Record{
				PID: 1000 + r, Rank: r, FD: 3, File: cfg.File, Op: cfg.Op,
				Offset: off, Size: size, Time: t + float64(r)*rankJitter,
			})
			off += size + cfg.RegionSpacing
		}
	}
	return tr, nil
}

// BTIOConfig parameterizes the BTIO-like generator. The paper runs the
// NAS BT-IO simple subtype with Class B and Class C request sizes
// interleaved ("each process issues file requests at the sizes of those
// in Class B and C in an interleaved fashion"), on 9/16/25 processes,
// with a 1.69 GB + 6.8 GB output file.
type BTIOConfig struct {
	File string
	Op   trace.Op

	// Procs must be a square number (BTIO requirement).
	Procs int
	// Steps is the number of time steps (40 in BT-IO).
	Steps int
	// TotalB and TotalC are the bytes written across the run at Class B
	// and Class C request sizes respectively.
	TotalB int64
	TotalC int64
}

// DefaultBTIO mirrors the paper: 40 steps, 1.69 GB Class B + 6.8 GB
// Class C.
func DefaultBTIO(procs int, op trace.Op) BTIOConfig {
	return BTIOConfig{
		File:   "btio.out",
		Op:     op,
		Procs:  procs,
		Steps:  40,
		TotalB: units.GB * 169 / 100, // 1.69 GB
		TotalC: units.GB * 68 / 10,   // 6.8 GB
	}
}

// Validate checks the configuration.
func (c BTIOConfig) Validate() error {
	if c.File == "" {
		return fmt.Errorf("workload: btio: empty file name")
	}
	if c.Procs <= 0 || !isSquare(c.Procs) {
		return fmt.Errorf("workload: btio: process count %d is not a positive square", c.Procs)
	}
	if c.Steps <= 0 {
		return fmt.Errorf("workload: btio: non-positive steps")
	}
	if c.TotalB <= 0 || c.TotalC <= 0 {
		return fmt.Errorf("workload: btio: non-positive class totals")
	}
	return nil
}

func isSquare(n int) bool {
	for i := 1; i*i <= n; i++ {
		if i*i == n {
			return true
		}
	}
	return false
}

// BTIO generates the trace: steps alternate between Class B and Class C
// request sizes; within a step every process accesses its interleaved
// cell, appended sequentially through the file.
func BTIO(cfg BTIOConfig) (trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Per-step, per-process request sizes, aligned to 16 bytes like the
	// solution-vector cells.
	stepsB := (cfg.Steps + 1) / 2
	stepsC := cfg.Steps / 2
	sizeB := align16(cfg.TotalB / int64(stepsB*cfg.Procs))
	sizeC := align16(cfg.TotalC / int64(stepsC*cfg.Procs))
	var tr trace.Trace
	var off int64
	for s := 0; s < cfg.Steps; s++ {
		size := sizeB
		if s%2 == 1 {
			size = sizeC
		}
		t := float64(s) * epochGap
		for r := 0; r < cfg.Procs; r++ {
			tr = append(tr, trace.Record{
				PID: 1000 + r, Rank: r, FD: 3, File: cfg.File, Op: cfg.Op,
				Offset: off, Size: size, Time: t + float64(r)*rankJitter,
			})
			off += size
		}
	}
	return tr, nil
}

func align16(n int64) int64 {
	if n < 16 {
		return 16
	}
	return n - n%16
}
