package workload

import (
	"reflect"
	"testing"

	"mhafs/internal/pattern"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

func TestIORUniform(t *testing.T) {
	tr, err := IOR(IORConfig{
		File: "f", Op: trace.OpWrite,
		Sizes: []int64{64 * units.KB}, Procs: []int{16},
		FileSize: 16 * units.MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.TotalBytes(); got != 16*units.MB {
		t.Errorf("TotalBytes = %d", got)
	}
	if got := len(tr.Ranks()); got != 16 {
		t.Errorf("ranks = %d", got)
	}
	// Sequential disjoint extents.
	for i := 1; i < len(tr); i++ {
		if tr[i].Offset != tr[i-1].End() {
			t.Fatalf("extent gap at %d", i)
		}
	}
}

func TestIORMixedSizes(t *testing.T) {
	tr, err := IOR(IORConfig{
		File: "f", Op: trace.OpRead,
		Sizes: []int64{128 * units.KB, 256 * units.KB}, Procs: []int{32},
		FileSize: 64 * units.MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	hist := pattern.SizeHistogram(tr)
	if len(hist) != 2 {
		t.Fatalf("distinct sizes = %d, want 2", len(hist))
	}
	// Phases alternate: the first 32 records share one size, the next 32
	// the other.
	for i := 0; i < 32; i++ {
		if tr[i].Size != 128*units.KB {
			t.Fatalf("record %d size %d", i, tr[i].Size)
		}
	}
	for i := 32; i < 64; i++ {
		if tr[i].Size != 256*units.KB {
			t.Fatalf("record %d size %d", i, tr[i].Size)
		}
	}
}

func TestIORMixedProcs(t *testing.T) {
	tr, err := IOR(IORConfig{
		File: "f", Op: trace.OpRead,
		Sizes: []int64{256 * units.KB}, Procs: []int{8, 32},
		FileSize: 40 * units.MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	ann := pattern.Annotate(tr, pattern.DefaultEpochWindow)
	seen := map[int]bool{}
	for _, a := range ann {
		seen[a.Concurrency] = true
	}
	if !seen[8] || !seen[32] {
		t.Errorf("concurrencies seen: %v, want 8 and 32", seen)
	}
}

func TestIORShuffleKeepsExtentsDisjoint(t *testing.T) {
	mk := func(shuffle bool) trace.Trace {
		tr, err := IOR(IORConfig{
			File: "f", Op: trace.OpRead,
			Sizes: []int64{64 * units.KB, 128 * units.KB}, Procs: []int{4},
			FileSize: 8 * units.MB, Shuffle: shuffle, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	plain, shuffled := mk(false), mk(true)
	if plain.TotalBytes() != shuffled.TotalBytes() || len(plain) != len(shuffled) {
		t.Fatal("shuffle changed the workload volume")
	}
	if reflect.DeepEqual(plain, shuffled) {
		t.Error("shuffle did nothing")
	}
	// Same extent set either way.
	extents := func(tr trace.Trace) map[[2]int64]bool {
		m := make(map[[2]int64]bool)
		for _, r := range tr {
			m[[2]int64{r.Offset, r.Size}] = true
		}
		return m
	}
	if !reflect.DeepEqual(extents(plain), extents(shuffled)) {
		t.Error("shuffle altered extents")
	}
	// Determinism.
	again := mk(true)
	if !reflect.DeepEqual(shuffled, again) {
		t.Error("shuffle not deterministic")
	}
}

func TestIORValidation(t *testing.T) {
	base := IORConfig{File: "f", Sizes: []int64{64}, Procs: []int{4}, FileSize: 1024}
	muts := []func(*IORConfig){
		func(c *IORConfig) { c.File = "" },
		func(c *IORConfig) { c.Sizes = nil },
		func(c *IORConfig) { c.Sizes = []int64{0} },
		func(c *IORConfig) { c.Procs = nil },
		func(c *IORConfig) { c.Procs = []int{0} },
		func(c *IORConfig) { c.FileSize = 0 },
	}
	for i, m := range muts {
		cfg := base
		m(&cfg)
		if _, err := IOR(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestHPIO(t *testing.T) {
	tr, err := HPIO(HPIOConfig{
		File: "f", Op: trace.OpWrite, Procs: 16,
		RegionCount: 64, RegionSpacing: 0,
		RegionSizes: []int64{16 * units.KB, 32 * units.KB, 64 * units.KB},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr) != 64*16 {
		t.Fatalf("records = %d", len(tr))
	}
	if got := len(pattern.SizeHistogram(tr)); got != 3 {
		t.Errorf("distinct sizes = %d", got)
	}
	// Spacing 0: contiguous extents.
	for i := 1; i < len(tr); i++ {
		if tr[i].Offset != tr[i-1].End() {
			t.Fatalf("extent gap at %d", i)
		}
	}
	// With spacing, gaps appear.
	tr2, _ := HPIO(HPIOConfig{
		File: "f", Op: trace.OpWrite, Procs: 2,
		RegionCount: 2, RegionSpacing: 4096, RegionSizes: []int64{1024},
	})
	if tr2[1].Offset != tr2[0].End()+4096 {
		t.Errorf("spacing not applied: %d vs %d", tr2[1].Offset, tr2[0].End())
	}
}

func TestHPIOValidation(t *testing.T) {
	base := HPIOConfig{File: "f", Procs: 2, RegionCount: 2, RegionSizes: []int64{64}}
	muts := []func(*HPIOConfig){
		func(c *HPIOConfig) { c.File = "" },
		func(c *HPIOConfig) { c.Procs = 0 },
		func(c *HPIOConfig) { c.RegionCount = 0 },
		func(c *HPIOConfig) { c.RegionSpacing = -1 },
		func(c *HPIOConfig) { c.RegionSizes = nil },
		func(c *HPIOConfig) { c.RegionSizes = []int64{-1} },
	}
	for i, m := range muts {
		cfg := base
		m(&cfg)
		if _, err := HPIO(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestBTIO(t *testing.T) {
	cfg := DefaultBTIO(9, trace.OpWrite)
	cfg.TotalB, cfg.TotalC = 16*units.MB, 64*units.MB // scaled for tests
	tr, err := BTIO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr) != 40*9 {
		t.Fatalf("records = %d", len(tr))
	}
	hist := pattern.SizeHistogram(tr)
	if len(hist) != 2 {
		t.Fatalf("distinct sizes = %d, want 2 (B and C interleaved)", len(hist))
	}
	if hist[1].Size <= hist[0].Size || hist[1].Size%16 != 0 || hist[0].Size%16 != 0 {
		t.Errorf("sizes = %+v", hist)
	}
	// Steps alternate.
	if tr[0].Size == tr[9].Size {
		t.Error("steps 0 and 1 should use different class sizes")
	}
}

func TestBTIOValidation(t *testing.T) {
	if _, err := BTIO(DefaultBTIO(10, trace.OpWrite)); err == nil {
		t.Error("non-square process count accepted")
	}
	cfg := DefaultBTIO(4, trace.OpWrite)
	cfg.Steps = 0
	if _, err := BTIO(cfg); err == nil {
		t.Error("zero steps accepted")
	}
	cfg = DefaultBTIO(4, trace.OpWrite)
	cfg.TotalB = 0
	if _, err := BTIO(cfg); err == nil {
		t.Error("zero totals accepted")
	}
	cfg = DefaultBTIO(4, trace.OpWrite)
	cfg.File = ""
	if _, err := BTIO(cfg); err == nil {
		t.Error("empty file accepted")
	}
}

func TestLANLSequence(t *testing.T) {
	seq := LANLSequence(2)
	want := []int64{16, 131056, 131072, 16, 131056, 131072}
	if !reflect.DeepEqual(seq, want) {
		t.Errorf("sequence = %v", seq)
	}
}

func TestLANL(t *testing.T) {
	tr, err := LANL(LANLConfig{File: "f", Op: trace.OpWrite, Procs: 8, Loops: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr) != 3*8*4 {
		t.Fatalf("records = %d", len(tr))
	}
	hist := pattern.SizeHistogram(tr)
	if len(hist) != 3 {
		t.Fatalf("distinct sizes = %d", len(hist))
	}
	if hist[0].Size != LANLSmall || hist[2].Size != LANLLarge2 {
		t.Errorf("sizes = %+v", hist)
	}
	// Concurrency: every epoch has all 8 ranks.
	for _, a := range pattern.Annotate(tr, pattern.DefaultEpochWindow) {
		if a.Concurrency != 8 {
			t.Fatalf("concurrency = %d", a.Concurrency)
		}
	}
	// No overlapping extents.
	tr.SortByOffset()
	for i := 1; i < len(tr); i++ {
		if tr[i].Offset < tr[i-1].End() {
			t.Fatalf("overlap between %+v and %+v", tr[i-1], tr[i])
		}
	}
}

func TestLANLValidation(t *testing.T) {
	for _, cfg := range []LANLConfig{
		{File: "", Procs: 1, Loops: 1},
		{File: "f", Procs: 0, Loops: 1},
		{File: "f", Procs: 1, Loops: 0},
	} {
		if _, err := LANL(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestLU(t *testing.T) {
	cfg := DefaultLU()
	cfg.Slabs = 16
	tr, err := LU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Files()); got != 8 {
		t.Errorf("files = %d, want one per process", got)
	}
	s := tr.Summarize()
	if s.Writes != 8*16 {
		t.Errorf("writes = %d", s.Writes)
	}
	if s.Reads == 0 {
		t.Error("no reads generated")
	}
	// All writes fixed size; reads within the documented range.
	for _, r := range tr {
		if r.Op == trace.OpWrite && r.Size != LUWriteSize {
			t.Fatalf("write size %d", r.Size)
		}
		if r.Op == trace.OpRead && (r.Size < LUReadMin || r.Size > LUReadMax) {
			t.Fatalf("read size %d outside [%d,%d]", r.Size, LUReadMin, LUReadMax)
		}
	}
	// Determinism.
	again, _ := LU(cfg)
	if !reflect.DeepEqual(tr, again) {
		t.Error("LU not deterministic")
	}
}

func TestLUValidation(t *testing.T) {
	for _, mut := range []func(*LUConfig){
		func(c *LUConfig) { c.FilePrefix = "" },
		func(c *LUConfig) { c.Procs = 0 },
		func(c *LUConfig) { c.Slabs = 0 },
	} {
		cfg := DefaultLU()
		mut(&cfg)
		if _, err := LU(cfg); err == nil {
			t.Errorf("bad LU config accepted: %+v", cfg)
		}
	}
}

func TestCholesky(t *testing.T) {
	cfg := DefaultCholesky()
	cfg.Panels = 32
	tr, err := Cholesky(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Files()); got != 8 {
		t.Errorf("files = %d", got)
	}
	var largeReads int
	for _, r := range tr {
		switch r.Op {
		case trace.OpRead:
			if r.Size < CholReadMin || r.Size > CholReadMax {
				t.Fatalf("read size %d out of range", r.Size)
			}
			if r.Size > CholReadMax/2 {
				largeReads++
			}
		case trace.OpWrite:
			if r.Size < CholWriteMin || r.Size > CholWriteMax {
				t.Fatalf("write size %d out of range", r.Size)
			}
		}
	}
	if largeReads == 0 {
		t.Error("expected a small number of large reads, got none")
	}
	if largeReads > len(tr)/4 {
		t.Errorf("too many large reads: %d of %d", largeReads, len(tr))
	}
	// Determinism.
	again, _ := Cholesky(cfg)
	if !reflect.DeepEqual(tr, again) {
		t.Error("Cholesky not deterministic")
	}
}

func TestCholeskyValidation(t *testing.T) {
	for _, mut := range []func(*CholeskyConfig){
		func(c *CholeskyConfig) { c.FilePrefix = "" },
		func(c *CholeskyConfig) { c.Procs = 0 },
		func(c *CholeskyConfig) { c.Panels = 0 },
	} {
		cfg := DefaultCholesky()
		mut(&cfg)
		if _, err := Cholesky(cfg); err == nil {
			t.Errorf("bad Cholesky config accepted")
		}
	}
}

// Write sizes in Cholesky vary "more considerably" than LANL/LU — sanity
// check the generator produces a wide spread.
func TestCholeskySizeSpread(t *testing.T) {
	tr, _ := Cholesky(DefaultCholesky())
	s := tr.Summarize()
	if s.MaxSize < 100*s.MinSize {
		t.Errorf("size spread too narrow: [%d, %d]", s.MinSize, s.MaxSize)
	}
}
