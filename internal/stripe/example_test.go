package stripe_test

import (
	"fmt"

	"mhafs/internal/stripe"
)

// The paper's Fig. 1 example, scaled to bytes: a file striped over two
// HServers and two SServers. A varied pair <32, 96> sends three times the
// data to each (faster) SServer.
func ExampleLayout_Split() {
	l := stripe.Layout{M: 2, N: 2, H: 32, S: 96}
	for _, sub := range l.Split(0, 256) {
		fmt.Printf("%s gets %d bytes\n", sub.Server, sub.Size)
	}
	// Output:
	// H0 gets 32 bytes
	// H1 gets 32 bytes
	// S0 gets 96 bytes
	// S1 gets 96 bytes
}

func ExampleLayout_Locate() {
	l := stripe.Uniform(2, 2, 64) // DEF-style fixed stripes
	server, local := l.Locate(200)
	fmt.Printf("byte 200 lives on %s at local offset %d\n", server, local)
	// Output:
	// byte 200 lives on S1 at local offset 8
}
