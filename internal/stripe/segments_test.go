package stripe

import (
	"testing"
	"testing/quick"
)

func TestSegmentsSingleStripe(t *testing.T) {
	l := Uniform(2, 2, 64)
	segs := l.Segments(10, 20)
	if len(segs) != 1 {
		t.Fatalf("segments = %d, want 1", len(segs))
	}
	s := segs[0]
	if s.Server != (ServerRef{ClassH, 0}) || s.Global != 10 || s.Local != 10 || s.Size != 20 {
		t.Errorf("segment = %+v", s)
	}
}

func TestSegmentsCrossServers(t *testing.T) {
	l := Uniform(2, 2, 64)
	segs := l.Segments(32, 64) // crosses H0→H1 boundary at 64
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2: %+v", len(segs), segs)
	}
	if segs[0].Server != (ServerRef{ClassH, 0}) || segs[0].Size != 32 || segs[0].Local != 32 {
		t.Errorf("seg0 = %+v", segs[0])
	}
	if segs[1].Server != (ServerRef{ClassH, 1}) || segs[1].Size != 32 || segs[1].Local != 0 {
		t.Errorf("seg1 = %+v", segs[1])
	}
}

func TestSegmentsCrossRound(t *testing.T) {
	l := Uniform(1, 1, 64) // round = 128
	segs := l.Segments(96, 64)
	// [96,128) on S0 local [32,64); [128,160) on H0 local [64,96).
	if len(segs) != 2 {
		t.Fatalf("segments = %d: %+v", len(segs), segs)
	}
	if segs[0].Server.Class != ClassS || segs[0].Local != 32 {
		t.Errorf("seg0 = %+v", segs[0])
	}
	if segs[1].Server.Class != ClassH || segs[1].Local != 64 {
		t.Errorf("seg1 = %+v", segs[1])
	}
}

func TestSegmentsEmpty(t *testing.T) {
	l := Uniform(1, 1, 64)
	if segs := l.Segments(5, 0); segs != nil {
		t.Errorf("zero-length segments = %+v", segs)
	}
}

// Properties: segments are contiguous in global space, cover exactly the
// extent, agree with Locate, and their per-server sums match Split.
func TestSegmentsConsistencyQuick(t *testing.T) {
	layouts := []Layout{
		Uniform(2, 2, 64),
		{M: 6, N: 2, H: 32, S: 96},
		{M: 2, N: 2, H: 0, S: 64},
		{M: 1, N: 1, H: 8, S: 120},
	}
	f := func(offRaw, lenRaw uint16, li uint8) bool {
		l := layouts[int(li)%len(layouts)]
		off, n := int64(offRaw), int64(lenRaw%2048)
		segs := l.Segments(off, n)
		pos := off
		perServer := make(map[ServerRef]int64)
		for _, s := range segs {
			if s.Global != pos || s.Size <= 0 {
				return false
			}
			ref, local := l.Locate(s.Global)
			if ref != s.Server || local != s.Local {
				return false
			}
			perServer[s.Server] += s.Size
			pos += s.Size
		}
		if pos != off+n {
			return false
		}
		for _, sub := range l.Split(off, n) {
			if perServer[sub.Server] != sub.Size {
				return false
			}
			delete(perServer, sub.Server)
		}
		return len(perServer) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
