package stripe

import (
	"mhafs/internal/telemetry"
)

// Telemetry series emitted by the striping layer.
const (
	// MetricRegionHits counts striped extents per target file — for MHA
	// workloads this is the per-region hit profile of the redirection
	// phase (region files carry the region/ prefix, originals their own
	// name).
	MetricRegionHits = "stripe_region_hits_total"
	// MetricSubRequests counts per-server sub-requests by server class.
	MetricSubRequests = "stripe_subrequests_total"
	// MetricFanout is the distribution of sub-requests per striped extent.
	MetricFanout = "stripe_fanout_subrequests"
)

// Meter aggregates striping decisions into a telemetry registry: which
// region (file) each striped extent hit, how many sub-requests the split
// produced, and how they divide between HServers and SServers. The
// cluster invokes it from its planning path when telemetry is enabled.
type Meter struct {
	reg    *telemetry.Registry
	subH   *telemetry.Counter
	subS   *telemetry.Counter
	fanout *telemetry.Histogram
}

// NewMeter creates a meter emitting into reg.
func NewMeter(reg *telemetry.Registry) *Meter {
	return &Meter{
		reg:    reg,
		subH:   reg.Counter(MetricSubRequests, telemetry.L("class", ClassH.String())),
		subS:   reg.Counter(MetricSubRequests, telemetry.L("class", ClassS.String())),
		fanout: reg.Histogram(MetricFanout, telemetry.FanoutBuckets()),
	}
}

// ObserveSplit records one striped extent: the file (region) it targeted
// and the per-server sub-requests its layout split produced. Metering is
// opt-in observability — the meter is nil on the measured XL path, and
// per-region counter registration allocates by design.
//
//mhavet:coldpath opt-in stripe metering, nil on the measured path
func (m *Meter) ObserveSplit(file string, subs []SubRequest) {
	m.reg.Counter(MetricRegionHits, telemetry.L("region", file)).Inc()
	m.fanout.Observe(float64(len(subs)))
	for _, s := range subs {
		if s.Server.Class == ClassH {
			m.subH.Inc()
		} else {
			m.subS.Inc()
		}
	}
}
