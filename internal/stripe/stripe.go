// Package stripe implements varied-size file striping over a hybrid set of
// servers.
//
// A layout places a file round-robin over M HServers (HDD-backed) with
// stripe size h and N SServers (SSD-backed) with stripe size s — the
// <h, s> stripe pair of the MHA paper. One stripe round covers
// M·h + N·s bytes of the file: HServer i holds bytes [i·h, (i+1)·h) of the
// round, SServer j holds bytes [M·h + j·s, M·h + (j+1)·s). The paper's
// fixed-size scheme (Fig. 1) is the special case h = s; the degenerate
// h = 0 places data only on SServers, which Algorithm 2 explicitly allows.
//
// Because a file extent is contiguous, its intersection with one server's
// stripes is a single contiguous range in that server's local address
// space; Split therefore yields at most M + N sub-requests, matching how a
// real PFS ships one contiguous sub-request per server.
package stripe

import (
	"fmt"

	"mhafs/internal/units"
)

// Class identifies the server type within a layout.
type Class uint8

// Server classes.
const (
	ClassH Class = iota // HDD-backed server
	ClassS              // SSD-backed server
)

// String returns "H" or "S".
func (c Class) String() string {
	switch c {
	case ClassH:
		return "H"
	case ClassS:
		return "S"
	default:
		return fmt.Sprintf("C%d", uint8(c))
	}
}

// ServerRef names one server of a layout: its class and index within that
// class.
type ServerRef struct {
	Class Class
	Index int
}

// String renders e.g. "H2" or "S0".
func (r ServerRef) String() string { return fmt.Sprintf("%s%d", r.Class, r.Index) }

// Flat maps the reference to a single index space: HServers first
// (0..M-1), then SServers (M..M+N-1). The paper's Fig. 8 labels servers
// this way (S0–S5 HServers, S6–S7 SServers).
func (r ServerRef) Flat(m int) int {
	if r.Class == ClassH {
		return r.Index
	}
	return m + r.Index
}

// Layout is a varied-size striping description.
type Layout struct {
	M int   // number of HServers
	N int   // number of SServers
	H int64 // stripe size per HServer, bytes (0 allowed if data is SServer-only)
	S int64 // stripe size per SServer, bytes (0 allowed if data is HServer-only)
}

// Uniform returns the fixed-stripe layout the paper calls the default
// (DEF): the same stripe size on every server.
func Uniform(m, n int, stripeSize int64) Layout {
	return Layout{M: m, N: n, H: stripeSize, S: stripeSize}
}

// Validate checks structural invariants.
func (l Layout) Validate() error {
	if l.M < 0 || l.N < 0 {
		return fmt.Errorf("stripe: negative server count (M=%d N=%d)", l.M, l.N)
	}
	if l.H < 0 || l.S < 0 {
		return fmt.Errorf("stripe: negative stripe size (H=%d S=%d)", l.H, l.S)
	}
	if l.M == 0 && l.N == 0 {
		return fmt.Errorf("stripe: layout has no servers")
	}
	if l.RoundLength() == 0 {
		return fmt.Errorf("stripe: layout stores no data (M·H + N·S = 0)")
	}
	return nil
}

// DropServer returns the layout with one server of the given class
// removed — the degraded shape failover re-stripes onto when a server of
// that class is unavailable. The second return is false when the class is
// already empty or the remaining layout would store no data (then the
// caller must fall back to the other class entirely).
func (l Layout) DropServer(c Class) (Layout, bool) {
	switch c {
	case ClassH:
		if l.M == 0 {
			return Layout{}, false
		}
		l.M--
	case ClassS:
		if l.N == 0 {
			return Layout{}, false
		}
		l.N--
	default:
		return Layout{}, false
	}
	if l.Validate() != nil {
		return Layout{}, false
	}
	return l, true
}

// RoundLength returns the bytes covered by one full stripe round.
func (l Layout) RoundLength() int64 {
	return int64(l.M)*l.H + int64(l.N)*l.S
}

// Servers returns every server reference of the layout in flat order,
// including servers whose stripe size is zero (they hold no data but still
// exist in the cluster).
func (l Layout) Servers() []ServerRef {
	out := make([]ServerRef, 0, l.M+l.N)
	for i := 0; i < l.M; i++ {
		out = append(out, ServerRef{ClassH, i})
	}
	for j := 0; j < l.N; j++ {
		out = append(out, ServerRef{ClassS, j})
	}
	return out
}

// stripeOf returns the stripe size and within-round base offset of a
// server.
func (l Layout) stripeOf(r ServerRef) (size, base int64) {
	if r.Class == ClassH {
		return l.H, int64(r.Index) * l.H
	}
	return l.S, int64(l.M)*l.H + int64(r.Index)*l.S
}

// Locate maps a global file offset to its server and the local offset on
// that server. It panics on offsets outside any server window, which
// cannot happen for a valid layout.
func (l Layout) Locate(off int64) (ServerRef, int64) {
	if off < 0 {
		panic(fmt.Sprintf("stripe: negative offset %d", off))
	}
	L := l.RoundLength()
	round, pos := off/L, off%L
	if l.H > 0 && pos < int64(l.M)*l.H {
		// pos < M·h bounds idx below l.M, an int, so int(idx) cannot truncate.
		idx := pos / l.H
		return ServerRef{ClassH, int(idx)}, round*l.H + pos%l.H //mhavet:allow trunc
	}
	pos -= int64(l.M) * l.H
	// Validate caps pos below N·s, so idx < l.N and the conversion is exact.
	idx := pos / l.S
	return ServerRef{ClassS, int(idx)}, round*l.S + pos%l.S //mhavet:allow trunc
}

// LocalToGlobal inverts Locate for a given server.
func (l Layout) LocalToGlobal(r ServerRef, local int64) int64 {
	if local < 0 {
		panic(fmt.Sprintf("stripe: negative local offset %d", local))
	}
	size, base := l.stripeOf(r)
	if size == 0 {
		panic(fmt.Sprintf("stripe: server %s holds no data in layout %+v", r, l))
	}
	round, within := local/size, local%size
	return round*l.RoundLength() + base + within
}

// SubRequest is the portion of a file extent that lands on one server: a
// single contiguous range in the server's local space.
type SubRequest struct {
	Server ServerRef
	Local  int64 // starting local offset on the server
	Size   int64 // bytes
}

// PrefixBytes returns how many bytes of the global prefix [0, x) fall
// into the window [base, base+size) of each stripe round of length L —
// the closed-form prefix sum behind Split and the layout planners'
// incremental cost kernel. It is translation-invariant modulo rounds:
// PrefixBytes(x+q·L, base, size, L) = PrefixBytes(x, base, size, L) +
// q·size, which is what lets the kernel evaluate a request's phase
// (offset mod L) instead of its absolute offset.
func PrefixBytes(x, base, size, L int64) int64 {
	if x <= 0 || size == 0 {
		return 0
	}
	full := x / L
	rem := x % L
	n := full * size
	if rem > base {
		d := rem - base
		if d > size {
			d = size
		}
		n += d
	}
	return n
}

// Split maps the file extent [off, off+length) to per-server sub-requests.
// Servers receiving no bytes are omitted. The order is flat server order.
func (l Layout) Split(off, length int64) []SubRequest {
	return l.AppendSplit(nil, off, length)
}

// AppendSplit is Split appending into dst, so a caller reusing planning
// scratch splits without allocating. The flat server order is iterated
// directly rather than materializing Servers().
func (l Layout) AppendSplit(dst []SubRequest, off, length int64) []SubRequest {
	if off < 0 || length < 0 {
		panic(fmt.Sprintf("stripe: invalid extent off=%d len=%d", off, length))
	}
	if length == 0 {
		return dst
	}
	L := l.RoundLength()
	if dst == nil {
		// First call only; planning scratch is reused afterwards.
		dst = make([]SubRequest, 0, l.M+l.N) //mhavet:allow literal
	}
	for k := 0; k < l.M+l.N; k++ {
		ref := ServerRef{Class: ClassH, Index: k}
		if k >= l.M {
			ref = ServerRef{Class: ClassS, Index: k - l.M}
		}
		size, base := l.stripeOf(ref)
		if size == 0 {
			continue
		}
		n := PrefixBytes(units.End(off, length), base, size, L) - PrefixBytes(off, base, size, L)
		if n == 0 {
			continue
		}
		dst = append(dst, SubRequest{Server: ref, Local: l.firstLocalAtOrAfter(off, ref), Size: n})
	}
	return dst
}

// firstLocalAtOrAfter returns the local offset on server ref of the first
// global byte ≥ off that maps to ref.
func (l Layout) firstLocalAtOrAfter(off int64, ref ServerRef) int64 {
	size, base := l.stripeOf(ref)
	L := l.RoundLength()
	round, pos := off/L, off%L
	switch {
	case pos < base:
		return round * size // window of this round not yet reached
	case pos < units.End(base, size):
		return round*size + (pos - base) // inside the window
	default:
		return (round + 1) * size // window passed; next round
	}
}

// PerServerBytes returns, indexed by flat server index, the number of
// bytes of the extent each server holds. It is the s_i / s_j quantity of
// the paper's cost model (Eq. 2).
func (l Layout) PerServerBytes(off, length int64) []int64 {
	out := make([]int64, l.M+l.N)
	for _, sr := range l.Split(off, length) {
		out[sr.Server.Flat(l.M)] += sr.Size
	}
	return out
}

// String renders the layout compactly, e.g. "6H×64KB+2S×192KB".
func (l Layout) String() string {
	return fmt.Sprintf("%dH×%d+%dS×%d", l.M, l.H, l.N, l.S)
}
