package stripe

import "testing"

func BenchmarkSplit(b *testing.B) {
	l := Layout{M: 6, N: 2, H: 32 << 10, S: 96 << 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Split(int64(i)*4096, 256<<10)
	}
}

func BenchmarkSegments(b *testing.B) {
	l := Layout{M: 6, N: 2, H: 32 << 10, S: 96 << 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Segments(int64(i)*4096, 256<<10)
	}
}

func BenchmarkLocate(b *testing.B) {
	l := Layout{M: 6, N: 2, H: 32 << 10, S: 96 << 10}
	for i := 0; i < b.N; i++ {
		l.Locate(int64(i) * 1337)
	}
}
