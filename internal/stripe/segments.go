package stripe

import "mhafs/internal/units"

// Segment is a maximal run of consecutive file bytes that lands on one
// server within one stripe round: the unit of actual data movement. Unlike
// SubRequest (which coalesces a server's bytes across rounds for timing
// purposes), segments carry the global offset needed to slice a data
// buffer correctly.
type Segment struct {
	Server ServerRef
	Global int64 // starting offset in the file
	Local  int64 // starting offset on the server
	Size   int64 // bytes
}

// Segments decomposes the extent [off, off+length) into per-round,
// per-server segments in ascending global order. The concatenation of
// segments exactly covers the extent with no overlap.
func (l Layout) Segments(off, length int64) []Segment {
	if off < 0 || length < 0 {
		panic("stripe: invalid extent")
	}
	if length == 0 {
		return nil
	}
	var out []Segment
	pos := off
	end := units.End(off, length)
	for pos < end {
		ref, local := l.Locate(pos)
		size, _ := l.stripeOf(ref)
		// Bytes remaining in this server's window of the current round.
		within := local % size
		run := size - within
		if pos+run > end {
			run = end - pos
		}
		out = append(out, Segment{Server: ref, Global: pos, Local: local, Size: run})
		pos += run
	}
	return out
}
