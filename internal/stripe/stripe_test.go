package stripe

import (
	"testing"
	"testing/quick"
)

func TestClassServerRefString(t *testing.T) {
	if ClassH.String() != "H" || ClassS.String() != "S" {
		t.Error("Class.String wrong")
	}
	if (ServerRef{ClassH, 2}).String() != "H2" {
		t.Error("ServerRef.String wrong")
	}
	if (ServerRef{ClassS, 1}).Flat(6) != 7 {
		t.Error("Flat for SServer wrong")
	}
	if (ServerRef{ClassH, 3}).Flat(6) != 3 {
		t.Error("Flat for HServer wrong")
	}
}

func TestValidate(t *testing.T) {
	good := []Layout{
		{M: 2, N: 2, H: 64, S: 64},
		{M: 2, N: 2, H: 0, S: 64}, // SServer-only data
		{M: 0, N: 2, H: 0, S: 64},
		{M: 2, N: 0, H: 64, S: 0},
	}
	for _, l := range good {
		if err := l.Validate(); err != nil {
			t.Errorf("%v rejected: %v", l, err)
		}
	}
	bad := []Layout{
		{M: -1, N: 2, H: 64, S: 64},
		{M: 2, N: -1, H: 64, S: 64},
		{M: 2, N: 2, H: -64, S: 64},
		{M: 2, N: 2, H: 64, S: -64},
		{M: 0, N: 0},
		{M: 2, N: 2, H: 0, S: 0},
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("%v accepted", l)
		}
	}
}

func TestUniform(t *testing.T) {
	l := Uniform(2, 2, 64)
	if l.H != 64 || l.S != 64 || l.RoundLength() != 256 {
		t.Errorf("Uniform wrong: %+v", l)
	}
}

func TestServers(t *testing.T) {
	l := Layout{M: 2, N: 1, H: 4, S: 8}
	refs := l.Servers()
	want := []ServerRef{{ClassH, 0}, {ClassH, 1}, {ClassS, 0}}
	if len(refs) != len(want) {
		t.Fatalf("Servers len = %d", len(refs))
	}
	for i := range want {
		if refs[i] != want[i] {
			t.Errorf("Servers[%d] = %v, want %v", i, refs[i], want[i])
		}
	}
}

func TestLocateFixedStripe(t *testing.T) {
	// Fig. 1 of the paper: 2 HServers + 2 SServers, 64-byte stripes
	// (scaled down from 64KB). Round = 256 bytes.
	l := Uniform(2, 2, 64)
	cases := []struct {
		off   int64
		want  ServerRef
		local int64
	}{
		{0, ServerRef{ClassH, 0}, 0},
		{63, ServerRef{ClassH, 0}, 63},
		{64, ServerRef{ClassH, 1}, 0},
		{128, ServerRef{ClassS, 0}, 0},
		{192, ServerRef{ClassS, 1}, 0},
		{255, ServerRef{ClassS, 1}, 63},
		{256, ServerRef{ClassH, 0}, 64}, // second round
		{300, ServerRef{ClassH, 0}, 108},
	}
	for _, c := range cases {
		ref, local := l.Locate(c.off)
		if ref != c.want || local != c.local {
			t.Errorf("Locate(%d) = %v,%d, want %v,%d", c.off, ref, local, c.want, c.local)
		}
	}
}

func TestLocateVariedStripe(t *testing.T) {
	// <h,s> = <32, 96>, 2+2 servers, round = 2*32 + 2*96 = 256.
	l := Layout{M: 2, N: 2, H: 32, S: 96}
	ref, local := l.Locate(0)
	if ref != (ServerRef{ClassH, 0}) || local != 0 {
		t.Errorf("Locate(0) = %v,%d", ref, local)
	}
	ref, local = l.Locate(64)
	if ref != (ServerRef{ClassS, 0}) || local != 0 {
		t.Errorf("Locate(64) = %v,%d", ref, local)
	}
	ref, local = l.Locate(64 + 96)
	if ref != (ServerRef{ClassS, 1}) || local != 0 {
		t.Errorf("Locate(160) = %v,%d", ref, local)
	}
	ref, local = l.Locate(256 + 40)
	if ref != (ServerRef{ClassH, 1}) || local != 32+8 {
		t.Errorf("Locate(296) = %v,%d", ref, local)
	}
}

func TestLocateSSDOnly(t *testing.T) {
	l := Layout{M: 2, N: 2, H: 0, S: 64}
	ref, local := l.Locate(0)
	if ref != (ServerRef{ClassS, 0}) || local != 0 {
		t.Errorf("Locate(0) = %v,%d", ref, local)
	}
	ref, local = l.Locate(130)
	if ref != (ServerRef{ClassS, 0}) || local != 66 {
		t.Errorf("Locate(130) = %v,%d", ref, local)
	}
}

func TestLocatePanics(t *testing.T) {
	l := Uniform(1, 1, 64)
	defer func() {
		if recover() == nil {
			t.Error("Locate(-1): want panic")
		}
	}()
	l.Locate(-1)
}

func TestSplitWholeRound(t *testing.T) {
	l := Layout{M: 2, N: 2, H: 32, S: 96}
	subs := l.Split(0, 256)
	if len(subs) != 4 {
		t.Fatalf("Split len = %d, want 4", len(subs))
	}
	wantSizes := map[ServerRef]int64{
		{ClassH, 0}: 32, {ClassH, 1}: 32,
		{ClassS, 0}: 96, {ClassS, 1}: 96,
	}
	for _, s := range subs {
		if s.Size != wantSizes[s.Server] || s.Local != 0 {
			t.Errorf("sub %+v, want size %d local 0", s, wantSizes[s.Server])
		}
	}
}

func TestSplitPartial(t *testing.T) {
	l := Uniform(2, 2, 64)
	// [96, 160): last 32 bytes of H1's stripe + first 32 of S0's.
	subs := l.Split(96, 64)
	if len(subs) != 2 {
		t.Fatalf("Split len = %d, want 2: %+v", len(subs), subs)
	}
	if subs[0].Server != (ServerRef{ClassH, 1}) || subs[0].Local != 32 || subs[0].Size != 32 {
		t.Errorf("first sub wrong: %+v", subs[0])
	}
	if subs[1].Server != (ServerRef{ClassS, 0}) || subs[1].Local != 0 || subs[1].Size != 32 {
		t.Errorf("second sub wrong: %+v", subs[1])
	}
}

func TestSplitMultiRound(t *testing.T) {
	l := Uniform(2, 2, 64)
	// Two full rounds: every server gets 128 contiguous local bytes.
	subs := l.Split(0, 512)
	if len(subs) != 4 {
		t.Fatalf("Split len = %d", len(subs))
	}
	for _, s := range subs {
		if s.Size != 128 || s.Local != 0 {
			t.Errorf("sub %+v, want 128 bytes at local 0", s)
		}
	}
}

func TestSplitSkipsEmptyServers(t *testing.T) {
	l := Layout{M: 2, N: 2, H: 0, S: 64}
	subs := l.Split(0, 128)
	if len(subs) != 2 {
		t.Fatalf("Split len = %d, want 2 (SServers only): %+v", len(subs), subs)
	}
	for _, s := range subs {
		if s.Server.Class != ClassS {
			t.Errorf("unexpected HServer sub-request %+v with h=0", s)
		}
	}
}

func TestSplitZeroLength(t *testing.T) {
	l := Uniform(2, 2, 64)
	if subs := l.Split(100, 0); subs != nil {
		t.Errorf("zero-length Split = %+v, want nil", subs)
	}
}

func TestSplitPanics(t *testing.T) {
	l := Uniform(1, 1, 64)
	for _, c := range []struct{ off, n int64 }{{-1, 10}, {0, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Split(%d,%d): want panic", c.off, c.n)
				}
			}()
			l.Split(c.off, c.n)
		}()
	}
}

func TestPerServerBytes(t *testing.T) {
	l := Layout{M: 2, N: 2, H: 32, S: 96}
	got := l.PerServerBytes(0, 256)
	want := []int64{32, 32, 96, 96}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("PerServerBytes[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestLocalToGlobalRoundTrip(t *testing.T) {
	l := Layout{M: 3, N: 2, H: 40, S: 112}
	for off := int64(0); off < 3*l.RoundLength(); off++ {
		ref, local := l.Locate(off)
		if back := l.LocalToGlobal(ref, local); back != off {
			t.Fatalf("round trip %d -> (%v,%d) -> %d", off, ref, local, back)
		}
	}
}

func TestLocalToGlobalPanics(t *testing.T) {
	l := Layout{M: 1, N: 1, H: 0, S: 64}
	mustPanic(t, "zero-stripe server", func() { l.LocalToGlobal(ServerRef{ClassH, 0}, 0) })
	mustPanic(t, "negative local", func() { l.LocalToGlobal(ServerRef{ClassS, 0}, -1) })
}

// Property: Split conserves bytes and never overlaps local ranges on a
// server.
func TestSplitConservationQuick(t *testing.T) {
	layouts := []Layout{
		Uniform(2, 2, 64),
		{M: 6, N: 2, H: 32, S: 96},
		{M: 2, N: 2, H: 0, S: 64},
		{M: 1, N: 3, H: 128, S: 4},
		{M: 4, N: 0, H: 16, S: 0},
	}
	f := func(offRaw, lenRaw uint16, li uint8) bool {
		l := layouts[int(li)%len(layouts)]
		off, n := int64(offRaw), int64(lenRaw)
		subs := l.Split(off, n)
		var total int64
		for _, s := range subs {
			if s.Size <= 0 || s.Local < 0 {
				return false
			}
			total += s.Size
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every byte of an extent maps, via Locate, to the sub-request
// local range computed by Split.
func TestSplitMatchesLocateQuick(t *testing.T) {
	l := Layout{M: 2, N: 2, H: 24, S: 56}
	f := func(offRaw uint8, lenRaw uint8) bool {
		off, n := int64(offRaw), int64(lenRaw%64)+1
		subs := l.Split(off, n)
		ranges := make(map[ServerRef][2]int64)
		for _, s := range subs {
			ranges[s.Server] = [2]int64{s.Local, s.Local + s.Size}
		}
		for x := off; x < off+n; x++ {
			ref, local := l.Locate(x)
			r, ok := ranges[ref]
			if !ok || local < r[0] || local >= r[1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLayoutString(t *testing.T) {
	l := Layout{M: 6, N: 2, H: 65536, S: 196608}
	if got := l.String(); got != "6H×65536+2S×196608" {
		t.Errorf("String = %q", got)
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: want panic", name)
		}
	}()
	fn()
}
