// Package parfan is the repository's deterministic fan-out primitive: an
// ordered worker-pool map over an index range.
//
// Every parallel path in the planner and the bench harness goes through
// Map/MapErr rather than raw goroutines, because the primitive's contract
// is exactly the determinism argument the figure suite rests on (DESIGN.md
// §12): fn(i) writes only to slot i of the result slice, slots are
// committed in index order by construction, and the caller observes the
// complete slice only after every worker has finished. The output is
// therefore a pure function of (n, fn) — goroutine scheduling can change
// wall-clock time, never bytes.
//
// Workers == 1 (or n <= 1) bypasses goroutines entirely: the serial path
// is a plain loop, so "-workers 1" reproduces the historical single-thread
// execution exactly, stack traces included.
package parfan

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count setting: w <= 0 selects
// runtime.GOMAXPROCS(0), anything else is used as given, and the result
// never exceeds n (there is no point parking idle workers on a pool
// smaller than the work list).
func Workers(w, n int) int {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if n >= 1 && w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the n results in index order. Work is handed out through a
// shared atomic cursor (dynamic load balancing: a worker finishing a cheap
// item immediately picks up the next), but each result is stored in its
// own slot, so the returned slice is independent of scheduling. A panic in
// any fn is re-raised on the caller's goroutine after all workers stop;
// when several fn panic, the one with the lowest index wins, matching what
// a serial loop would have surfaced first.
func Map[T any](n, workers int, fn func(int) T) []T {
	out := make([]T, n)
	run(n, workers, func(i int) error {
		out[i] = fn(i)
		return nil
	})
	return out
}

// MapErr is Map for fallible fn. Every index runs regardless of failures
// elsewhere — short-circuiting would make *which* error surfaces depend on
// scheduling — and the returned error is the non-nil error with the lowest
// index, exactly the one a serial loop that collected all errors would
// report first. On error the result slice is still returned with every
// successful slot filled.
func MapErr[T any](n, workers int, fn func(int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := run(n, workers, func(i int) error {
		var e error
		out[i], e = fn(i)
		return e
	})
	return out, err
}

// panicValue carries a worker panic to the caller's goroutine.
type panicValue struct {
	idx int
	val any
}

// run executes fn over [0, n), serially for workers <= 1, otherwise on a
// pool. It returns the lowest-index error and re-raises the lowest-index
// panic.
func run(n, workers int, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)
	if workers == 1 {
		// The serial path: no goroutines, so panics unwind the caller's
		// stack directly and "-workers 1" equals the historical behavior.
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	errs := make([]error, n)
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
		mu     sync.Mutex
		pv     *panicValue
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if pv == nil || i < pv.idx {
								pv = &panicValue{idx: i, val: r}
							}
							mu.Unlock()
						}
					}()
					errs[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if pv != nil {
		panic(pv.val)
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
