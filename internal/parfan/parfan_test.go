package parfan

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	cases := []struct {
		w, n, want int
	}{
		{0, 100, min(gmp, 100)},
		{-3, 100, min(gmp, 100)},
		{1, 100, 1},
		{8, 4, 4},
		{8, 100, 8},
		{4, 0, 4}, // n < 1 leaves w alone (nothing to cap against)
	}
	for _, c := range cases {
		if got := Workers(c.w, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.w, c.n, got, c.want)
		}
	}
}

// TestMapOrdered checks the core contract at several worker counts: the
// result slice is in index order no matter how the pool schedules.
func TestMapOrdered(t *testing.T) {
	const n = 1000
	for _, workers := range []int{1, 2, 3, 8, 64} {
		got := Map(n, workers, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapSerialParallelIdentical pins serial-vs-parallel equivalence for a
// fn with per-index state.
func TestMapSerialParallelIdentical(t *testing.T) {
	fn := func(i int) string { return fmt.Sprintf("item-%03d", i*7%13) }
	serial := Map(50, 1, fn)
	for _, workers := range []int{2, 8} {
		parallel := Map(50, workers, fn)
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("workers=%d: slot %d: serial %q != parallel %q",
					workers, i, serial[i], parallel[i])
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got := Map(0, 8, func(i int) int { return i }); len(got) != 0 {
		t.Errorf("Map(0) returned %v", got)
	}
	if got := Map(1, 8, func(i int) int { return 42 }); len(got) != 1 || got[0] != 42 {
		t.Errorf("Map(1) returned %v", got)
	}
}

// TestMapErrLowestIndexWins: every index runs, and the reported error is
// the one with the lowest index regardless of worker count.
func TestMapErrLowestIndexWins(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var ran atomic.Int64
		out, err := MapErr(20, workers, func(i int) (int, error) {
			ran.Add(1)
			if i == 17 || i == 5 || i == 11 {
				return 0, fmt.Errorf("fail at %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "fail at 5" {
			t.Errorf("workers=%d: err = %v, want fail at 5", workers, err)
		}
		if ran.Load() != 20 {
			t.Errorf("workers=%d: ran %d of 20 items", workers, ran.Load())
		}
		// Successful slots are filled even on error.
		if out[3] != 3 || out[19] != 19 {
			t.Errorf("workers=%d: successful slots not filled: %v", workers, out)
		}
	}
}

func TestMapErrNoError(t *testing.T) {
	out, err := MapErr(10, 4, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

// TestMapPanicPropagates: a worker panic surfaces on the caller's
// goroutine, and the lowest-index panic wins.
func TestMapPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("workers=%d: no panic propagated", workers)
					return
				}
				if s, ok := r.(string); !ok || s != "boom-3" {
					t.Errorf("workers=%d: recovered %v, want boom-3", workers, r)
				}
			}()
			Map(10, workers, func(i int) int {
				if i == 3 || i == 7 {
					panic(fmt.Sprintf("boom-%d", i))
				}
				return i
			})
		}()
	}
}

// TestMapErrSentinelErrors: errors.Is works through the fan-out (the
// error value is returned as-is, not wrapped).
func TestMapErrSentinelErrors(t *testing.T) {
	sentinel := errors.New("sentinel")
	_, err := MapErr(4, 2, func(i int) (int, error) {
		if i == 2 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
}

// TestMapConcurrentStress hammers the pool under -race: shared-nothing
// slots must never trip the detector.
func TestMapConcurrentStress(t *testing.T) {
	for round := 0; round < 10; round++ {
		got := Map(200, 16, func(i int) [2]int { return [2]int{i, i * 3} })
		for i, v := range got {
			if v != [2]int{i, i * 3} {
				t.Fatalf("round %d slot %d = %v", round, i, v)
			}
		}
	}
}

func BenchmarkMapOverhead(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Map(16, workers, func(j int) int { return j })
			}
		})
	}
}
