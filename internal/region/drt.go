// Package region implements the two metadata tables of the MHA scheme:
//
//   - the Data Reordering Table (DRT), which tracks where each extent of
//     an original file now lives among the reordered regions, and
//   - the Region Stripe Table (RST), which records the optimized stripe
//     pair (as a full layout) of every region.
//
// Both tables persist through the embedded kvstore (the paper uses
// Berkeley DB) with synchronous write-through, and both keep an in-memory
// index for fast lookups on the I/O path: the DRT holds per-file mapping
// lists sorted by original offset so the Redirector can translate an
// extent with a binary search.
package region

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"mhafs/internal/kvstore"
)

// Mapping is one DRT entry, mirroring the paper's five variables: O_file,
// O_offset, R_file, R_offset, Length.
type Mapping struct {
	OFile   string // original file name
	OOffset int64  // offset within the original file
	RFile   string // reordered region (a physical file)
	ROffset int64  // offset within the region
	Length  int64  // extent length in bytes
}

// Validate checks structural invariants.
func (m Mapping) Validate() error {
	if m.OFile == "" || m.RFile == "" {
		return fmt.Errorf("region: mapping with empty file name")
	}
	if strings.ContainsRune(m.OFile, '\x00') || strings.ContainsRune(m.RFile, '\x00') {
		return fmt.Errorf("region: file name contains NUL")
	}
	if m.OOffset < 0 || m.ROffset < 0 {
		return fmt.Errorf("region: negative offset in mapping %+v", m)
	}
	if m.Length <= 0 {
		return fmt.Errorf("region: non-positive length in mapping %+v", m)
	}
	return nil
}

// OEnd returns one past the last original byte covered.
func (m Mapping) OEnd() int64 { return m.OOffset + m.Length }

// encode serializes a mapping value for the kvstore:
// rOffset(8) length(8) rFile. The key carries oFile and oOffset.
func (m Mapping) encodeValue() []byte {
	buf := make([]byte, 16+len(m.RFile))
	binary.LittleEndian.PutUint64(buf[0:8], uint64(m.ROffset))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(m.Length))
	copy(buf[16:], m.RFile)
	return buf
}

func decodeValue(oFile string, oOffset int64, v []byte) (Mapping, error) {
	if len(v) < 16 {
		return Mapping{}, fmt.Errorf("region: short DRT value (%d bytes)", len(v))
	}
	return Mapping{
		OFile:   oFile,
		OOffset: oOffset,
		RFile:   string(v[16:]),
		ROffset: int64(binary.LittleEndian.Uint64(v[0:8])),
		Length:  int64(binary.LittleEndian.Uint64(v[8:16])),
	}, nil
}

// drtKey encodes the original extent identity: file \x00 offset(8).
func drtKey(oFile string, oOffset int64) []byte {
	k := make([]byte, len(oFile)+9)
	copy(k, oFile)
	k[len(oFile)] = 0
	binary.BigEndian.PutUint64(k[len(oFile)+1:], uint64(oOffset))
	return k
}

func splitDRTKey(k []byte) (string, int64, error) {
	i := -1
	for j, b := range k {
		if b == 0 {
			i = j
			break
		}
	}
	if i < 0 || len(k) != i+9 {
		return "", 0, fmt.Errorf("region: malformed DRT key")
	}
	return string(k[:i]), int64(binary.BigEndian.Uint64(k[i+1:])), nil
}

// DRT is the Data Reordering Table.
type DRT struct {
	store *kvstore.Store
	// byFile indexes mappings per original file, sorted by OOffset.
	byFile map[string][]Mapping
}

// OpenDRT opens (or creates) a DRT backed by the kvstore at path; an
// empty path keeps the table in memory only.
func OpenDRT(path string) (*DRT, error) {
	st, err := kvstore.Open(path, kvstore.Options{Sync: path != ""})
	if err != nil {
		return nil, err
	}
	d := &DRT{store: st, byFile: make(map[string][]Mapping)}
	var loadErr error
	st.ForEach(func(k, v []byte) bool {
		oFile, oOffset, err := splitDRTKey(k)
		if err != nil {
			loadErr = err
			return false
		}
		m, err := decodeValue(oFile, oOffset, v)
		if err != nil {
			loadErr = err
			return false
		}
		d.byFile[oFile] = append(d.byFile[oFile], m)
		return true
	})
	if loadErr != nil {
		st.Close()
		return nil, loadErr
	}
	for f := range d.byFile {
		ms := d.byFile[f]
		sort.Slice(ms, func(i, j int) bool { return ms[i].OOffset < ms[j].OOffset })
	}
	return d, nil
}

// Add inserts a mapping. The new extent must not overlap an existing
// mapping of the same original file — reordered extents partition the
// original file.
func (d *DRT) Add(m Mapping) error {
	if err := m.Validate(); err != nil {
		return err
	}
	ms := d.byFile[m.OFile]
	i := sort.Search(len(ms), func(i int) bool { return ms[i].OOffset >= m.OOffset })
	if i < len(ms) && ms[i].OOffset < m.OEnd() {
		return fmt.Errorf("region: mapping %+v overlaps %+v", m, ms[i])
	}
	if i > 0 && ms[i-1].OEnd() > m.OOffset {
		return fmt.Errorf("region: mapping %+v overlaps %+v", m, ms[i-1])
	}
	if err := d.store.Put(drtKey(m.OFile, m.OOffset), m.encodeValue()); err != nil {
		return err
	}
	ms = append(ms, Mapping{})
	copy(ms[i+1:], ms[i:])
	ms[i] = m
	d.byFile[m.OFile] = ms
	return nil
}

// Len returns the number of mappings.
func (d *DRT) Len() int {
	n := 0
	for _, ms := range d.byFile {
		n += len(ms)
	}
	return n
}

// Mappings returns the mappings of one original file, sorted by offset.
// The returned slice must not be modified.
func (d *DRT) Mappings(oFile string) []Mapping {
	return d.byFile[oFile]
}

// HasFile reports whether any mapping covers the original file. It is the
// allocation-free fast path in front of Translate: per-request callers on
// the hot path check it first and skip translation (which materializes a
// target slice even for identity results) while the table holds nothing
// for the file.
func (d *DRT) HasFile(oFile string) bool {
	return len(d.byFile[oFile]) > 0
}

// Files returns the original file names with at least one mapping, sorted.
func (d *DRT) Files() []string {
	out := make([]string, 0, len(d.byFile))
	for f := range d.byFile {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Target is one piece of a translated extent: where the bytes live now.
type Target struct {
	File   string // region file, or the original file for unmapped gaps
	Offset int64
	Size   int64
	Mapped bool // false for identity pieces (no DRT entry covers them)
}

// Translate resolves the extent [off, off+length) of an original file into
// the regions holding it. Unmapped sub-ranges translate to themselves in
// the original file (Mapped=false), so files never touched by reordering
// work transparently.
func (d *DRT) Translate(oFile string, off, length int64) []Target {
	if length <= 0 {
		return nil
	}
	ms := d.byFile[oFile]
	var out []Target
	pos, end := off, off+length
	// First mapping that could intersect: the last with OOffset ≤ pos, or
	// the next one after.
	i := sort.Search(len(ms), func(i int) bool { return ms[i].OEnd() > pos })
	for pos < end {
		if i >= len(ms) || ms[i].OOffset >= end {
			out = append(out, Target{File: oFile, Offset: pos, Size: end - pos})
			break
		}
		m := ms[i]
		if m.OOffset > pos {
			out = append(out, Target{File: oFile, Offset: pos, Size: m.OOffset - pos})
			pos = m.OOffset
		}
		stop := m.OEnd()
		if stop > end {
			stop = end
		}
		out = append(out, Target{
			File:   m.RFile,
			Offset: m.ROffset + (pos - m.OOffset),
			Size:   stop - pos,
			Mapped: true,
		})
		pos = stop
		i++
	}
	return out
}

// Close releases the backing store.
func (d *DRT) Close() error { return d.store.Close() }
