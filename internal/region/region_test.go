package region

import (
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"mhafs/internal/stripe"
)

func memDRT(t *testing.T) *DRT {
	t.Helper()
	d, err := OpenDRT("")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMappingValidate(t *testing.T) {
	good := Mapping{OFile: "f", OOffset: 0, RFile: "r0", ROffset: 0, Length: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Mapping{
		{OFile: "", RFile: "r", Length: 1},
		{OFile: "f", RFile: "", Length: 1},
		{OFile: "f\x00x", RFile: "r", Length: 1},
		{OFile: "f", RFile: "r", OOffset: -1, Length: 1},
		{OFile: "f", RFile: "r", ROffset: -1, Length: 1},
		{OFile: "f", RFile: "r", Length: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad mapping %d accepted", i)
		}
	}
}

func TestDRTAddAndMappings(t *testing.T) {
	d := memDRT(t)
	defer d.Close()
	// Insert out of order; Mappings must come back sorted.
	d.Add(Mapping{OFile: "f", OOffset: 200, RFile: "r1", ROffset: 0, Length: 50})
	d.Add(Mapping{OFile: "f", OOffset: 0, RFile: "r0", ROffset: 0, Length: 100})
	ms := d.Mappings("f")
	if len(ms) != 2 || ms[0].OOffset != 0 || ms[1].OOffset != 200 {
		t.Errorf("mappings = %+v", ms)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestDRTRejectsOverlap(t *testing.T) {
	d := memDRT(t)
	defer d.Close()
	d.Add(Mapping{OFile: "f", OOffset: 100, RFile: "r0", ROffset: 0, Length: 100})
	overlaps := []Mapping{
		{OFile: "f", OOffset: 150, RFile: "r1", ROffset: 0, Length: 10},  // inside
		{OFile: "f", OOffset: 50, RFile: "r1", ROffset: 0, Length: 60},   // left edge
		{OFile: "f", OOffset: 199, RFile: "r1", ROffset: 0, Length: 100}, // right edge
		{OFile: "f", OOffset: 0, RFile: "r1", ROffset: 0, Length: 400},   // covers
	}
	for i, m := range overlaps {
		if err := d.Add(m); err == nil {
			t.Errorf("overlap %d accepted", i)
		}
	}
	// Adjacent extents are fine.
	if err := d.Add(Mapping{OFile: "f", OOffset: 200, RFile: "r1", ROffset: 0, Length: 10}); err != nil {
		t.Errorf("adjacent extent rejected: %v", err)
	}
	if err := d.Add(Mapping{OFile: "f", OOffset: 90, RFile: "r1", ROffset: 0, Length: 10}); err != nil {
		t.Errorf("left-adjacent extent rejected: %v", err)
	}
	// Other files do not conflict.
	if err := d.Add(Mapping{OFile: "g", OOffset: 100, RFile: "r2", ROffset: 0, Length: 100}); err != nil {
		t.Errorf("other-file extent rejected: %v", err)
	}
}

func TestDRTTranslateFullyMapped(t *testing.T) {
	d := memDRT(t)
	defer d.Close()
	d.Add(Mapping{OFile: "f", OOffset: 0, RFile: "r0", ROffset: 1000, Length: 100})
	got := d.Translate("f", 10, 50)
	want := []Target{{File: "r0", Offset: 1010, Size: 50, Mapped: true}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Translate = %+v, want %+v", got, want)
	}
}

func TestDRTTranslateSpansMappings(t *testing.T) {
	d := memDRT(t)
	defer d.Close()
	d.Add(Mapping{OFile: "f", OOffset: 0, RFile: "r0", ROffset: 0, Length: 100})
	d.Add(Mapping{OFile: "f", OOffset: 100, RFile: "r1", ROffset: 500, Length: 100})
	got := d.Translate("f", 50, 100)
	want := []Target{
		{File: "r0", Offset: 50, Size: 50, Mapped: true},
		{File: "r1", Offset: 500, Size: 50, Mapped: true},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Translate = %+v", got)
	}
}

func TestDRTTranslateGaps(t *testing.T) {
	d := memDRT(t)
	defer d.Close()
	d.Add(Mapping{OFile: "f", OOffset: 100, RFile: "r0", ROffset: 0, Length: 100})
	got := d.Translate("f", 0, 300)
	want := []Target{
		{File: "f", Offset: 0, Size: 100},
		{File: "r0", Offset: 0, Size: 100, Mapped: true},
		{File: "f", Offset: 200, Size: 100},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Translate = %+v", got)
	}
}

func TestDRTTranslateUnknownFile(t *testing.T) {
	d := memDRT(t)
	defer d.Close()
	got := d.Translate("nofile", 5, 10)
	want := []Target{{File: "nofile", Offset: 5, Size: 10}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Translate = %+v", got)
	}
	if d.Translate("nofile", 0, 0) != nil {
		t.Error("zero-length translate should be nil")
	}
}

// Property: translation is a partition — targets cover exactly the
// requested length, in order, with mapped pieces consistent with Add.
func TestDRTTranslatePartitionQuick(t *testing.T) {
	d := memDRT(t)
	defer d.Close()
	// Build a deterministic striped mapping: extents of 64 bytes
	// alternating between two regions, with gaps every third slot.
	roff := map[string]int64{}
	for i := 0; i < 30; i++ {
		if i%3 == 2 {
			continue // gap
		}
		r := "r0"
		if i%3 == 1 {
			r = "r1"
		}
		if err := d.Add(Mapping{OFile: "f", OOffset: int64(i) * 64, RFile: r, ROffset: roff[r], Length: 64}); err != nil {
			t.Fatal(err)
		}
		roff[r] += 64
	}
	f := func(offRaw, lenRaw uint16) bool {
		off := int64(offRaw) % 2200
		n := int64(lenRaw)%512 + 1
		ts := d.Translate("f", off, n)
		var total int64
		for _, tg := range ts {
			if tg.Size <= 0 {
				return false
			}
			total += tg.Size
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDRTPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drt.db")
	d, err := OpenDRT(path)
	if err != nil {
		t.Fatal(err)
	}
	m := Mapping{OFile: "orig.dat", OOffset: 4096, RFile: "region-1", ROffset: 128, Length: 512}
	if err := d.Add(m); err != nil {
		t.Fatal(err)
	}
	d.Close()

	d2, err := OpenDRT(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	ms := d2.Mappings("orig.dat")
	if len(ms) != 1 || ms[0] != m {
		t.Errorf("reloaded mappings = %+v, want %+v", ms, m)
	}
}

func TestRSTSetGet(t *testing.T) {
	r, err := OpenRST("")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	l := stripe.Layout{M: 6, N: 2, H: 32 << 10, S: 96 << 10}
	if err := r.Set("region-0", l); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Get("region-0")
	if !ok || got != l {
		t.Errorf("Get = %v,%v", got, ok)
	}
	if _, ok := r.Get("missing"); ok {
		t.Error("missing region found")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	n := 0
	r.ForEach(func(string, stripe.Layout) bool { n++; return true })
	if n != 1 {
		t.Errorf("ForEach visited %d", n)
	}
}

func TestRSTRejectsInvalid(t *testing.T) {
	r, _ := OpenRST("")
	defer r.Close()
	if err := r.Set("", stripe.Uniform(1, 1, 64)); err == nil {
		t.Error("empty region name accepted")
	}
	if err := r.Set("r", stripe.Layout{}); err == nil {
		t.Error("invalid layout accepted")
	}
}

func TestRSTPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rst.db")
	r, err := OpenRST(path)
	if err != nil {
		t.Fatal(err)
	}
	l1 := stripe.Layout{M: 6, N: 2, H: 0, S: 64 << 10}
	l2 := stripe.Layout{M: 6, N: 2, H: 16 << 10, S: 128 << 10}
	r.Set("r0", l1)
	r.Set("r1", l2)
	r.Set("r0", l2) // overwrite
	r.Close()

	r2, err := OpenRST(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got, _ := r2.Get("r0"); got != l2 {
		t.Errorf("r0 = %v, want %v", got, l2)
	}
	if got, _ := r2.Get("r1"); got != l2 {
		t.Errorf("r1 = %v", got)
	}
	if r2.Len() != 2 {
		t.Errorf("Len = %d", r2.Len())
	}
}
