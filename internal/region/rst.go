package region

import (
	"encoding/binary"
	"fmt"

	"mhafs/internal/kvstore"
	"mhafs/internal/stripe"
)

// RST is the Region Stripe Table: region file name → optimized layout
// (the <h, s> stripe pair plus the server counts it applies to). The MDS
// consults it during placement; clients receive the layout on open.
type RST struct {
	store *kvstore.Store
	table map[string]stripe.Layout
}

// OpenRST opens (or creates) an RST at path; empty path is in-memory.
func OpenRST(path string) (*RST, error) {
	st, err := kvstore.Open(path, kvstore.Options{Sync: path != ""})
	if err != nil {
		return nil, err
	}
	r := &RST{store: st, table: make(map[string]stripe.Layout)}
	var loadErr error
	st.ForEach(func(k, v []byte) bool {
		l, err := decodeLayout(v)
		if err != nil {
			loadErr = err
			return false
		}
		r.table[string(k)] = l
		return true
	})
	if loadErr != nil {
		st.Close()
		return nil, loadErr
	}
	return r, nil
}

func encodeLayout(l stripe.Layout) []byte {
	buf := make([]byte, 32)
	binary.LittleEndian.PutUint64(buf[0:8], uint64(l.M))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(l.N))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(l.H))
	binary.LittleEndian.PutUint64(buf[24:32], uint64(l.S))
	return buf
}

func decodeLayout(v []byte) (stripe.Layout, error) {
	if len(v) != 32 {
		return stripe.Layout{}, fmt.Errorf("region: bad RST value length %d", len(v))
	}
	return stripe.Layout{
		M: int(binary.LittleEndian.Uint64(v[0:8])),
		N: int(binary.LittleEndian.Uint64(v[8:16])),
		H: int64(binary.LittleEndian.Uint64(v[16:24])),
		S: int64(binary.LittleEndian.Uint64(v[24:32])),
	}, nil
}

// Set records (or replaces) the layout for a region.
func (r *RST) Set(regionFile string, l stripe.Layout) error {
	if regionFile == "" {
		return fmt.Errorf("region: empty region file name")
	}
	if err := l.Validate(); err != nil {
		return err
	}
	if err := r.store.Put([]byte(regionFile), encodeLayout(l)); err != nil {
		return err
	}
	r.table[regionFile] = l
	return nil
}

// Get returns the layout for a region.
func (r *RST) Get(regionFile string) (stripe.Layout, bool) {
	l, ok := r.table[regionFile]
	return l, ok
}

// Len returns the number of regions recorded.
func (r *RST) Len() int { return len(r.table) }

// ForEach visits every region → layout pair (unspecified order).
func (r *RST) ForEach(fn func(regionFile string, l stripe.Layout) bool) {
	for k, v := range r.table {
		if !fn(k, v) {
			return
		}
	}
}

// Close releases the backing store.
func (r *RST) Close() error { return r.store.Close() }
