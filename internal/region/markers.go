package region

import "strings"

// SchemeMarkers are the scheme tokens layout.RegionName embeds in every
// region file name ("<ofile>.<scheme>[.<tag>].r<idx>"). They are defined
// here, next to the tables that reference region files, so that code
// inspecting file names (garbage collection, tooling) shares one list
// instead of scattering string literals. A layout-package test pins the
// two in sync.
var SchemeMarkers = []string{"DEF", "AAL", "HARL", "MHA", "CARL", "HAS"}

// HasSchemeMarker reports whether name carries a region scheme marker —
// i.e. whether it looks like a region file rather than an original
// application file. Original files never match because the marker is
// matched with its surrounding dots, which RegionName always emits.
func HasSchemeMarker(name string) bool {
	for _, m := range SchemeMarkers {
		if strings.Contains(name, "."+m+".") {
			return true
		}
	}
	return false
}
