package netmodel

import (
	"math"
	"testing"
	"testing/quick"

	"mhafs/internal/units"
)

func TestDefaultValid(t *testing.T) {
	if err := DefaultGigE().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	if err := (Model{PerByte: 0}).Validate(); err == nil {
		t.Error("zero per-byte accepted")
	}
	if err := (Model{PerByte: 1, PerMessage: -1}).Validate(); err == nil {
		t.Error("negative per-message accepted")
	}
}

func TestTransferTime(t *testing.T) {
	m := Model{PerByte: units.PerByteFromMBps(100), PerMessage: 0.001}
	// 100MB at 100MB/s plus 1ms setup.
	if got := m.TransferTime(100 * units.MB); math.Abs(got-1.001) > 1e-9 {
		t.Errorf("TransferTime = %v, want 1.001", got)
	}
	if m.TransferTime(0) != 0 || m.TransferTime(-1) != 0 {
		t.Error("non-positive sizes should cost 0")
	}
}

func TestTransferTimeMonotonicQuick(t *testing.T) {
	m := DefaultGigE()
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return m.TransferTime(x) <= m.TransferTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
