// Package netmodel models the cluster interconnect.
//
// The MHA cost model assumes all servers offer the same network bandwidth
// (§III-F): moving one byte between a client and any server costs a uniform
// unit transfer time t (Table I). The model below adds an optional fixed
// per-message overhead for round-trip setup, which defaults to a small GbE
// figure and is charged once per sub-request.
package netmodel

import (
	"fmt"

	"mhafs/internal/units"
)

// Model describes the network between compute nodes and file servers.
type Model struct {
	Name string

	// PerByte is the unit data network transfer time t in seconds/byte.
	PerByte units.SecPerByte

	// PerMessage is a fixed per-sub-request overhead in seconds (protocol
	// round trip). The paper folds this into α; keeping it separate lets
	// ablations isolate network effects. Zero is valid.
	PerMessage float64
}

// Validate checks model sanity.
func (m Model) Validate() error {
	if m.PerByte <= 0 {
		return fmt.Errorf("netmodel %s: per-byte time must be positive", m.Name)
	}
	if m.PerMessage < 0 {
		return fmt.Errorf("netmodel %s: per-message overhead must be non-negative", m.Name)
	}
	return nil
}

// TransferTime returns the network time for one sub-request of n bytes.
func (m Model) TransferTime(n int64) float64 {
	if n <= 0 {
		return 0
	}
	return m.PerMessage + m.PerByte.Seconds(n)
}

// DefaultGigE returns a model of the paper's Gigabit Ethernet
// interconnection: ~117 MB/s effective point-to-point throughput charged
// per byte, plus a ~20 µs per-sub-request software/NIC overhead (the TCP
// round trips themselves pipeline across outstanding sub-requests, so the
// full ~100 µs RTT is not serialized). The shared per-byte network time is
// what keeps HServers relevant for large transfers — both media classes
// stream near wire speed, so the SSDs' decisive edge is their negligible
// startup cost, exactly the regime the paper's testbed exhibits.
func DefaultGigE() Model {
	return Model{
		Name:       "gige",
		PerByte:    units.PerByteFromMBps(117),
		PerMessage: 20e-6,
	}
}
