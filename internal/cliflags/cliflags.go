// Package cliflags defines the flags every mhafs command shares, so
// -workers and the plan-cache trio read identically across mhabench,
// mhactl and mhad: one help string, one default, one wiring into
// plancache.FromMode.
package cliflags

import (
	"flag"

	"mhafs/internal/plancache"
)

// Workers registers the shared -workers flag on fs. Every command
// guarantees byte-identical output at any setting; the flag only trades
// wall-clock for cores.
func Workers(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0,
		"worker-pool size (0 = GOMAXPROCS, 1 = serial); output is byte-identical at any setting")
}

// PlanCacheFlags holds the registered plan-cache flag pair.
type PlanCacheFlags struct {
	Mode *string // -plan-cache: mem, dir, off
	Dir  *string // -plan-cache-dir
}

// PlanCache registers the shared -plan-cache/-plan-cache-dir pair on fs.
func PlanCache(fs *flag.FlagSet) PlanCacheFlags {
	return PlanCacheFlags{
		Mode: fs.String("plan-cache", "mem",
			"plan cache mode: mem shares plans in-process, dir additionally persists them under -plan-cache-dir, off disables caching; output is byte-identical in every mode"),
		Dir: fs.String("plan-cache-dir", "plan_cache",
			"directory for -plan-cache=dir entries"),
	}
}

// Open builds the cache the flags selected (nil when -plan-cache=off).
func (f PlanCacheFlags) Open() (*plancache.Cache, error) {
	return plancache.FromMode(*f.Mode, *f.Dir)
}
