package cliflags

import (
	"flag"
	"io"
	"path/filepath"
	"strings"
	"testing"
)

// TestWorkers: default, parse, and the shared help text.
func TestWorkers(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	w := Workers(fs)
	if err := fs.Parse(nil); err != nil || *w != 0 {
		t.Fatalf("default workers %d (%v), want 0", *w, err)
	}
	fs = flag.NewFlagSet("x", flag.ContinueOnError)
	w = Workers(fs)
	if err := fs.Parse([]string{"-workers", "7"}); err != nil || *w != 7 {
		t.Fatalf("parsed workers %d (%v), want 7", *w, err)
	}
}

// TestPlanCacheOpen maps every mode through plancache.FromMode.
func TestPlanCacheOpen(t *testing.T) {
	parse := func(args ...string) PlanCacheFlags {
		fs := flag.NewFlagSet("x", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		f := PlanCache(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return f
	}
	if c, err := parse().Open(); err != nil || c == nil {
		t.Fatalf("default (mem): %v %v", c, err)
	}
	if c, err := parse("-plan-cache", "off").Open(); err != nil || c != nil {
		t.Fatalf("off: %v %v", c, err)
	}
	dir := filepath.Join(t.TempDir(), "pc")
	if c, err := parse("-plan-cache", "dir", "-plan-cache-dir", dir).Open(); err != nil || c == nil {
		t.Fatalf("dir: %v %v", c, err)
	}
	if _, err := parse("-plan-cache", "bogus").Open(); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

// TestHelpTextUnified pins that both flags carry the cross-command
// guarantee in their usage strings — the drift this package exists to
// prevent.
func TestHelpTextUnified(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	Workers(fs)
	PlanCache(fs)
	for _, name := range []string{"workers", "plan-cache"} {
		f := fs.Lookup(name)
		if f == nil {
			t.Fatalf("flag %q not registered", name)
		}
		if want := "byte-identical"; !strings.Contains(f.Usage, want) {
			t.Errorf("flag %q usage lacks %q: %s", name, want, f.Usage)
		}
	}
}
