// Package kvstore is a small embedded key-value store, the repository's
// substitute for the Berkeley DB the MHA paper uses to hold its Data
// Reordering Table (DRT) and Region Stripe Table (RST).
//
// Like the paper's configuration it behaves as a persistent hash table of
// key→value records. Durability follows the paper's requirement that
// "changes to the reordering entries in memory are synchronously written
// to the storage in order to survive power failures": every mutation is
// appended to a write-ahead log and, when Sync mode is on, fsync'd before
// the call returns. Opening a store replays the log, tolerating a torn
// final record (the log is checksummed per record).
//
// A store may also be purely in-memory (empty path) for simulations and
// tests.
package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"mhafs/internal/units"
)

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("kvstore: key not found")

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("kvstore: store is closed")

const (
	opPut byte = 1
	opDel byte = 2
)

// maxRecordLen guards against corrupt length fields during replay.
const maxRecordLen = 64 * units.MB

// Options configures a store.
type Options struct {
	// Sync forces an fsync after every mutation (the paper's synchronous
	// write-through). Ignored for in-memory stores.
	Sync bool
}

// Store is a hash-indexed, log-backed key-value store. All methods are
// safe for concurrent use — the DRT is "frequently accessed by the
// Redirector and shared by multiple processes".
type Store struct {
	mu     sync.RWMutex
	table  map[string][]byte
	file   *os.File
	writer *bufio.Writer
	opts   Options
	closed bool
	path   string
	puts   uint64 // statistics: applied puts (including overwrites)
	dels   uint64
}

// Open opens (creating if necessary) the store at path, replaying its log.
// An empty path yields a volatile in-memory store.
func Open(path string, opts Options) (*Store, error) {
	s := &Store{table: make(map[string][]byte), opts: opts, path: path}
	if path == "" {
		return s, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open %s: %w", path, err)
	}
	if err := s.replay(f); err != nil {
		f.Close()
		return nil, err
	}
	// Position at the valid end (replay may have stopped at a torn tail).
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("kvstore: seek %s: %w", path, err)
	}
	s.file = f
	s.writer = bufio.NewWriter(f)
	return s, nil
}

// replay loads the log into the in-memory table. A corrupt or truncated
// record ends the replay (the tail is discarded, matching WAL semantics);
// everything before it is kept. The file is truncated at the last valid
// record so subsequent appends do not interleave with garbage.
func (s *Store) replay(f *os.File) error {
	r := bufio.NewReader(f)
	var valid int64
	for {
		rec, n, err := readRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn tail: truncate and stop.
			if terr := f.Truncate(valid); terr != nil {
				return fmt.Errorf("kvstore: truncate torn log: %w", terr)
			}
			break
		}
		valid += n
		switch rec.op {
		case opPut:
			s.table[string(rec.key)] = rec.val
			s.puts++
		case opDel:
			delete(s.table, string(rec.key))
			s.dels++
		}
	}
	return nil
}

type record struct {
	op  byte
	key []byte
	val []byte
}

// readRecord decodes one log record: op(1) keyLen(4) valLen(4) key val
// crc32(4, over everything before it). Returns io.EOF cleanly at end.
func readRecord(r *bufio.Reader) (record, int64, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return record{}, 0, io.EOF
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return record{}, 0, fmt.Errorf("kvstore: short header: %w", err)
	}
	op := hdr[0]
	kl := binary.LittleEndian.Uint32(hdr[1:5])
	vl := binary.LittleEndian.Uint32(hdr[5:9])
	if op != opPut && op != opDel {
		return record{}, 0, fmt.Errorf("kvstore: bad op %d", op)
	}
	if int64(kl) > maxRecordLen || int64(vl) > maxRecordLen {
		return record{}, 0, fmt.Errorf("kvstore: record too large (%d/%d)", kl, vl)
	}
	body := make([]byte, int(kl)+int(vl)+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return record{}, 0, fmt.Errorf("kvstore: short body: %w", err)
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(body[:kl+vl])
	want := binary.LittleEndian.Uint32(body[kl+vl:])
	if crc.Sum32() != want {
		return record{}, 0, fmt.Errorf("kvstore: checksum mismatch")
	}
	rec := record{op: op, key: body[:kl], val: body[kl : kl+vl]}
	return rec, int64(9 + len(body)), nil
}

// appendRecord writes one record to the log and optionally syncs.
func (s *Store) appendRecord(op byte, key, val []byte) error {
	if s.file == nil {
		return nil // in-memory store
	}
	var hdr [9]byte
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(val)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(key)
	crc.Write(val)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	for _, b := range [][]byte{hdr[:], key, val, sum[:]} {
		if _, err := s.writer.Write(b); err != nil {
			return fmt.Errorf("kvstore: append: %w", err)
		}
	}
	if err := s.writer.Flush(); err != nil {
		return fmt.Errorf("kvstore: flush: %w", err)
	}
	if s.opts.Sync {
		if err := s.file.Sync(); err != nil {
			return fmt.Errorf("kvstore: sync: %w", err)
		}
	}
	return nil
}

// Put stores key→value. The value is copied.
func (s *Store) Put(key, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(key) == 0 {
		return fmt.Errorf("kvstore: empty key")
	}
	if err := s.appendRecord(opPut, key, val); err != nil {
		return err
	}
	v := make([]byte, len(val))
	copy(v, val)
	s.table[string(key)] = v
	s.puts++
	return nil
}

// Get returns a copy of the value for key, or ErrNotFound.
func (s *Store) Get(key []byte) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	v, ok := s.table[string(key)]
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Has reports whether key exists.
func (s *Store) Has(key []byte) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.table[string(key)]
	return ok
}

// Delete removes key; deleting a missing key is not an error.
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.table[string(key)]; !ok {
		return nil
	}
	if err := s.appendRecord(opDel, key, nil); err != nil {
		return err
	}
	delete(s.table, string(key))
	s.dels++
	return nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.table)
}

// ForEach calls fn for every key/value pair; iteration order is
// unspecified. fn must not mutate the store. Returning false stops early.
func (s *Store) ForEach(fn func(key, val []byte) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for k, v := range s.table {
		if !fn([]byte(k), v) {
			return
		}
	}
}

// Compact rewrites the log to contain only live records, reclaiming space
// from overwrites and deletions.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.file == nil {
		return nil
	}
	tmpPath := s.path + ".compact"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("kvstore: compact: %w", err)
	}
	w := bufio.NewWriter(tmp)
	old := s.writer
	oldFile := s.file
	s.writer, s.file = w, tmp
	for k, v := range s.table {
		if err := s.appendRecord(opPut, []byte(k), v); err != nil {
			s.writer, s.file = old, oldFile
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
	}
	if err := w.Flush(); err != nil {
		s.writer, s.file = old, oldFile
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("kvstore: compact flush: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		s.writer, s.file = old, oldFile
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("kvstore: compact sync: %w", err)
	}
	oldFile.Close()
	if err := os.Rename(tmpPath, s.path); err != nil {
		return fmt.Errorf("kvstore: compact rename: %w", err)
	}
	return nil
}

// Stats reports operation counters.
func (s *Store) Stats() (puts, dels uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.puts, s.dels
}

// Close flushes and closes the store. Further operations return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.file == nil {
		return nil
	}
	if err := s.writer.Flush(); err != nil {
		s.file.Close()
		return fmt.Errorf("kvstore: close flush: %w", err)
	}
	if err := s.file.Sync(); err != nil {
		s.file.Close()
		return fmt.Errorf("kvstore: close sync: %w", err)
	}
	return s.file.Close()
}
