package kvstore

import (
	"fmt"
	"path/filepath"
	"testing"
)

func BenchmarkPut(b *testing.B) {
	s, err := Open(filepath.Join(b.TempDir(), "kv.log"), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	s, _ := Open("", Options{})
	defer s.Close()
	for i := 0; i < 1024; i++ {
		s.Put([]byte(fmt.Sprintf("key-%d", i)), []byte("value"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get([]byte(fmt.Sprintf("key-%d", i%1024))); err != nil {
			b.Fatal(err)
		}
	}
}
