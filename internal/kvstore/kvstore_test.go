package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T, opts Options) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "kv.log")
	s, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func TestPutGetDelete(t *testing.T) {
	s, _ := openTemp(t, Options{})
	defer s.Close()

	if err := s.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get([]byte("k1"))
	if err != nil || !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if !s.Has([]byte("k1")) || s.Has([]byte("nope")) {
		t.Error("Has wrong")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if err := s.Delete([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get([]byte("k1")); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete = %v, want ErrNotFound", err)
	}
	if err := s.Delete([]byte("absent")); err != nil {
		t.Errorf("deleting missing key should be a no-op, got %v", err)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	s, _ := openTemp(t, Options{})
	defer s.Close()
	if err := s.Put(nil, []byte("v")); err == nil {
		t.Error("empty key accepted")
	}
}

func TestOverwrite(t *testing.T) {
	s, _ := openTemp(t, Options{})
	defer s.Close()
	s.Put([]byte("k"), []byte("a"))
	s.Put([]byte("k"), []byte("b"))
	got, _ := s.Get([]byte("k"))
	if !bytes.Equal(got, []byte("b")) {
		t.Errorf("overwrite: got %q", got)
	}
	if s.Len() != 1 {
		t.Errorf("Len after overwrite = %d", s.Len())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s, _ := openTemp(t, Options{})
	defer s.Close()
	s.Put([]byte("k"), []byte("val"))
	v, _ := s.Get([]byte("k"))
	v[0] = 'X'
	again, _ := s.Get([]byte("k"))
	if !bytes.Equal(again, []byte("val")) {
		t.Error("Get must return a copy")
	}
}

func TestPutCopiesValue(t *testing.T) {
	s, _ := openTemp(t, Options{})
	defer s.Close()
	val := []byte("val")
	s.Put([]byte("k"), val)
	val[0] = 'X'
	got, _ := s.Get([]byte("k"))
	if !bytes.Equal(got, []byte("val")) {
		t.Error("Put must copy the value")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.log")
	s, err := Open(path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		if err := s.Put(k, []byte(fmt.Sprintf("val-%d", i*i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete([]byte("key-050"))
	s.Put([]byte("key-051"), []byte("updated"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 99 {
		t.Errorf("Len after reopen = %d, want 99", s2.Len())
	}
	if s2.Has([]byte("key-050")) {
		t.Error("deleted key resurrected")
	}
	got, _ := s2.Get([]byte("key-051"))
	if !bytes.Equal(got, []byte("updated")) {
		t.Errorf("key-051 = %q", got)
	}
}

func TestTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.log")
	s, _ := Open(path, Options{})
	s.Put([]byte("good"), []byte("value"))
	s.Close()

	// Append garbage simulating a torn write.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.Write([]byte{opPut, 5, 0, 0, 0, 5, 0}) // truncated header+body
	f.Close()

	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer s2.Close()
	if !s2.Has([]byte("good")) {
		t.Error("valid prefix lost")
	}
	if s2.Len() != 1 {
		t.Errorf("Len = %d, want 1", s2.Len())
	}
	// The store must continue to accept writes and persist them.
	if err := s2.Put([]byte("after"), []byte("tear")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if !s3.Has([]byte("after")) || !s3.Has([]byte("good")) {
		t.Error("post-tear writes not durable")
	}
}

func TestChecksumCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.log")
	s, _ := Open(path, Options{})
	s.Put([]byte("aa"), []byte("bb"))
	s.Put([]byte("cc"), []byte("dd"))
	s.Close()

	// Flip a byte inside the second record's value.
	data, _ := os.ReadFile(path)
	data[len(data)-5] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Has([]byte("aa")) {
		t.Error("first record lost")
	}
	if s2.Has([]byte("cc")) {
		t.Error("corrupt record accepted")
	}
}

func TestInMemoryStore(t *testing.T) {
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Errorf("Compact on in-memory store: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClosedOperations(t *testing.T) {
	s, _ := openTemp(t, Options{})
	s.Close()
	if err := s.Put([]byte("k"), nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Put on closed = %v", err)
	}
	if _, err := s.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Errorf("Get on closed = %v", err)
	}
	if err := s.Delete([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Errorf("Delete on closed = %v", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrClosed) {
		t.Errorf("Compact on closed = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close = %v", err)
	}
}

func TestForEach(t *testing.T) {
	s, _ := openTemp(t, Options{})
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.Put([]byte(fmt.Sprintf("k%d", i)), []byte{byte(i)})
	}
	n := 0
	s.ForEach(func(k, v []byte) bool { n++; return true })
	if n != 10 {
		t.Errorf("ForEach visited %d", n)
	}
	n = 0
	s.ForEach(func(k, v []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.log")
	s, _ := Open(path, Options{})
	for i := 0; i < 50; i++ {
		s.Put([]byte("hot"), []byte(fmt.Sprintf("v%d", i)))
	}
	s.Put([]byte("cold"), []byte("x"))
	s.Delete([]byte("cold"))
	before, _ := os.Stat(path)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Store remains usable after compaction.
	if err := s.Put([]byte("post"), []byte("y")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("compact did not shrink log: %d -> %d", before.Size(), after.Size())
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, _ := s2.Get([]byte("hot"))
	if !bytes.Equal(got, []byte("v49")) {
		t.Errorf("hot = %q after compact+reopen", got)
	}
	if !s2.Has([]byte("post")) {
		t.Error("post-compact write lost")
	}
	if s2.Has([]byte("cold")) {
		t.Error("deleted key present after compact")
	}
}

func TestStats(t *testing.T) {
	s, _ := openTemp(t, Options{})
	defer s.Close()
	s.Put([]byte("a"), nil)
	s.Put([]byte("a"), nil)
	s.Delete([]byte("a"))
	puts, dels := s.Stats()
	if puts != 2 || dels != 1 {
		t.Errorf("Stats = %d,%d, want 2,1", puts, dels)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, _ := openTemp(t, Options{})
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := []byte(fmt.Sprintf("w%d-k%d", w, i))
				if err := s.Put(k, k); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(k); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 8*50 {
		t.Errorf("Len = %d, want 400", s.Len())
	}
}

// Property: for any sequence of puts, reopening yields exactly the final
// mapping.
func TestDurabilityQuick(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(keys []uint8, vals []uint8) bool {
		i++
		path := filepath.Join(dir, fmt.Sprintf("kv-%d.log", i))
		s, err := Open(path, Options{})
		if err != nil {
			return false
		}
		want := make(map[string][]byte)
		for j, k := range keys {
			key := []byte{k + 1} // non-empty
			var val []byte
			if j < len(vals) {
				val = []byte{vals[j]}
			}
			if s.Put(key, val) != nil {
				return false
			}
			want[string(key)] = val
		}
		s.Close()
		s2, err := Open(path, Options{})
		if err != nil {
			return false
		}
		defer s2.Close()
		if s2.Len() != len(want) {
			return false
		}
		ok := true
		s2.ForEach(func(k, v []byte) bool {
			w, exists := want[string(k)]
			if !exists || !bytes.Equal(v, w) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
