package kvstore

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpenLog feeds arbitrary bytes as an on-disk log: Open must never
// panic and must always yield a usable store (corrupt tails are dropped).
func FuzzOpenLog(f *testing.F) {
	// Seed with a valid one-record log.
	dir, _ := os.MkdirTemp("", "kvfuzz-seed")
	s, _ := Open(filepath.Join(dir, "seed.log"), Options{})
	s.Put([]byte("key"), []byte("value"))
	s.Close()
	valid, _ := os.ReadFile(filepath.Join(dir, "seed.log"))
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Add(append(append([]byte{}, valid...), 0xFF, 0x01))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "kv.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(path, Options{})
		if err != nil {
			return
		}
		defer st.Close()
		// The store must be writable and re-openable after recovery.
		if err := st.Put([]byte("probe"), []byte("x")); err != nil {
			t.Fatalf("post-recovery put: %v", err)
		}
		st.Close()
		st2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("re-open after recovery: %v", err)
		}
		defer st2.Close()
		if !st2.Has([]byte("probe")) {
			t.Fatal("post-recovery write lost")
		}
	})
}
