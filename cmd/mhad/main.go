// Command mhad runs the multi-tenant layout-plan service on a scripted
// submission history: the daemon front-end of internal/service, driven
// by a virtual clock so the run is a deterministic replay rather than a
// long-lived listener. The same script produces byte-identical state
// dumps and telemetry at every -workers setting — the property the CI
// determinism gate diffs.
//
//	mhad -script jobs.script [-slots N] [-workers N]
//	     [-plan-cache mem|dir|off] [-plan-cache-dir DIR] [-ledger-dir DIR]
//	     [-plan-base S] [-plan-per-record S] [-retry-max N] [-retry-backoff S]
//	     [-h N] [-s N] [-telemetry] [-telemetry-format json|prom]
//
// The script grammar (one op per line, '#' comments):
//
//	at <t> submit <tenant> <submitter> <scheme> gen:<file>:<r|w>:<size>:<count>[:procs] [as <label>]
//	at <t> cancel <label>
//
// -script - reads the script from stdin. The service state dump (jobs,
// ledger, lifecycle counters) is written to stdout as canonical JSON;
// -telemetry appends the registry snapshot. With -ledger-dir the dedupe
// ledger persists across invocations, so a re-run of the same script
// records every submission as a duplicate of the first run's jobs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mhafs/internal/cliflags"
	"mhafs/internal/layout"
	"mhafs/internal/service"
	"mhafs/internal/telemetry"
)

func main() {
	fs := flag.NewFlagSet("mhad", flag.ExitOnError)
	script := fs.String("script", "", "submission script path (- for stdin)")
	slots := fs.Int("slots", 2, "virtual planner slots: jobs planning concurrently in virtual time (part of the schedule, unlike -workers)")
	workers := cliflags.Workers(fs)
	planCache := cliflags.PlanCache(fs)
	ledgerDir := fs.String("ledger-dir", "", "persist the dedupe ledger under this directory (empty: memory-only)")
	planBase := fs.Float64("plan-base", 0.25, "virtual planning duration base (s)")
	planPerRecord := fs.Float64("plan-per-record", 0.0009765625, "virtual planning duration per trace record (s)")
	retryMax := fs.Int("retry-max", 2, "retries before a planner error fails the job")
	retryBackoff := fs.Float64("retry-backoff", 0.5, "first retry delay (s), doubling per attempt")
	hSrv := fs.Int("h", 6, "HServers in the planning environment")
	sSrv := fs.Int("s", 2, "SServers in the planning environment")
	telem := fs.Bool("telemetry", false, "emit the telemetry snapshot to stdout after the state dump")
	telFormat := fs.String("telemetry-format", "json", "telemetry snapshot format: json (canonical) or prom (Prometheus text)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		fatal(err)
	}

	if *script == "" {
		fatal(fmt.Errorf("missing -script"))
	}
	var text []byte
	var err error
	if *script == "-" {
		text, err = io.ReadAll(os.Stdin)
	} else {
		text, err = os.ReadFile(*script)
	}
	if err != nil {
		fatal(err)
	}
	ops, err := service.ParseScript(string(text))
	if err != nil {
		fatal(err)
	}

	cache, err := planCache.Open()
	if err != nil {
		fatal(err)
	}
	var reg *telemetry.Registry
	if *telem {
		reg = telemetry.NewRegistry()
	}
	svc, err := service.New(service.Config{
		Slots: *slots, Workers: *workers,
		PlanBase: *planBase, PlanPerRecord: *planPerRecord,
		RetryMax: *retryMax, RetryBackoff: *retryBackoff,
		Cache: cache, LedgerDir: *ledgerDir, Telemetry: reg,
	})
	if err != nil {
		fatal(err)
	}
	defer svc.Close()

	env := layout.DefaultEnv()
	env.M, env.N = *hSrv, *sSrv
	env.Workers = *workers
	if _, err := service.RunScript(svc, env, ops); err != nil {
		fatal(err)
	}
	if err := svc.WriteState(os.Stdout); err != nil {
		fatal(err)
	}
	if reg != nil {
		if cache != nil {
			cache.EmitTelemetry(reg)
		}
		var werr error
		switch *telFormat {
		case "prom":
			werr = reg.WritePrometheus(os.Stdout)
		case "json":
			werr = reg.WriteJSON(os.Stdout)
		default:
			werr = fmt.Errorf("unknown -telemetry-format %q (want json or prom)", *telFormat)
		}
		if werr != nil {
			fatal(werr)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mhad:", err)
	os.Exit(1)
}
