// Command mhabench regenerates the tables and figures of the MHA paper's
// evaluation (§V) on the simulated hybrid parallel file system.
//
// Usage:
//
//	mhabench [-fig all|3|7|8|9|10|11|12a|12b|13a|13b|14|meta]
//	         [-scale N] [-h N] [-s N] [-csv] [-json FILE]
//
// -scale divides the paper's workload volumes (default 64; 1 reproduces
// the full 16 GB runs). -h/-s override the default 6 HServer : 2 SServer
// cluster. -csv emits CSV instead of aligned text. -json additionally
// writes every generated table — plus the per-scheme aggregate bandwidth
// across the bandwidth figures — to FILE as machine-readable JSON
// (e.g. -json BENCH_pipeline.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mhafs/internal/bench"
	"mhafs/internal/config"
	"mhafs/internal/layout"
	"mhafs/internal/metrics"
	"mhafs/internal/units"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate (all, 3, 7, 8, 9, 10, 11, 12a, 12b, 13a, 13b, 14, meta, ablation-step, ablation-k, ablation-conc, scaling, extended)")
		scale   = flag.Int64("scale", 64, "divide the paper's workload volumes by this factor")
		hSrv    = flag.Int("h", 6, "number of HServers (HDD-backed)")
		sSrv    = flag.Int("s", 2, "number of SServers (SSD-backed)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut = flag.String("json", "", "also write the results as JSON to this file")
		calPath = flag.String("config", "", "JSON calibration file overriding device/network/planner defaults")
	)
	flag.Parse()

	cfg := bench.Default()
	cfg.Scale = *scale
	cfg.Cluster.HServers, cfg.Env.M = *hSrv, *hSrv
	cfg.Cluster.SServers, cfg.Env.N = *sSrv, *sSrv
	if *calPath != "" {
		cal, err := config.Load(*calPath)
		if err != nil {
			fatal(err)
		}
		cfg, err = cal.Apply(cfg)
		if err != nil {
			fatal(err)
		}
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	type runner struct {
		id    string
		extra bool // not part of the paper's figures; excluded from "all"
		fn    func() (*metrics.Table, []bench.BandwidthRow, error)
	}
	runners := []runner{
		{"3", false, func() (*metrics.Table, []bench.BandwidthRow, error) { return bench.Fig3(5), nil, nil }},
		{"7", false, tableOf(cfg.Fig7)},
		{"8", false, plainTable(cfg.Fig8)},
		{"9", false, tableOf(cfg.Fig9)},
		{"10", false, tableOf(cfg.Fig10)},
		{"11", false, tableOf(cfg.Fig11)},
		{"12a", false, tableOf(cfg.Fig12a)},
		{"12b", false, tableOf(cfg.Fig12b)},
		{"13a", false, tableOf(cfg.Fig13a)},
		{"13b", false, tableOf(cfg.Fig13b)},
		{"14", false, plainTable(cfg.Fig14)},
		{"latency", true, plainTable(cfg.Latency)},
		{"extended", true, plainTable(cfg.Extended)},
		{"scaling", true, plainTable(cfg.Scaling)},
		{"ablation-step", true, plainTable(cfg.StepAblation)},
		{"ablation-k", true, plainTable(cfg.GroupBoundAblation)},
		{"ablation-straggler", true, plainTable(cfg.StragglerAblation)},
		{"ablation-conc", true, plainTable(cfg.ConcurrencyAblation)},
		{"meta", false, func() (*metrics.Table, []bench.BandwidthRow, error) {
			_, tb := bench.MetaOverhead([]int64{4 * units.KB, 16 * units.KB, 64 * units.KB, 1 * units.MB})
			return tb, nil, nil
		}},
	}

	want := strings.ToLower(*fig)
	ran := false
	export := exportJSON{
		Scale:    *scale,
		HServers: *hSrv,
		SServers: *sSrv,
	}
	agg := make(map[layout.Scheme]*bandwidthAgg)
	for _, r := range runners {
		if want == "all" && r.extra {
			continue // extras (ablations, scaling, …) run only by name
		}
		if want != "all" && want != r.id {
			continue
		}
		ran = true
		tb, rows, err := r.fn()
		if err != nil {
			fatal(fmt.Errorf("fig %s: %w", r.id, err))
		}
		if *csv {
			if err := tb.FprintCSV(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			if err := tb.Fprint(os.Stdout); err != nil {
				fatal(err)
			}
		}
		fmt.Println()
		export.Figures = append(export.Figures, figureJSON{
			ID: r.id, Title: tb.Title, Headers: tb.Headers, Rows: tb.Data(),
		})
		for _, row := range rows {
			for _, s := range layout.AllSchemes() {
				a := agg[s]
				if a == nil {
					a = &bandwidthAgg{}
					agg[s] = a
				}
				if bw, ok := row.Read[s]; ok && bw > 0 {
					a.readSum += bw
					a.readN++
				}
				if bw, ok := row.Write[s]; ok && bw > 0 {
					a.writeSum += bw
					a.writeN++
				}
			}
		}
	}
	if !ran {
		fatal(fmt.Errorf("unknown figure %q (see -help for the list)", *fig))
	}
	if *jsonOut != "" {
		export.Bandwidth = make(map[string]bandwidthJSON, len(agg))
		for s, a := range agg {
			export.Bandwidth[s.String()] = a.summary()
		}
		if err := writeJSON(*jsonOut, export); err != nil {
			fatal(err)
		}
	}
}

// exportJSON is the machine-readable form of a run: every table printed,
// plus the per-scheme aggregate bandwidth over the bandwidth figures.
type exportJSON struct {
	Scale    int64        `json:"scale"`
	HServers int          `json:"hservers"`
	SServers int          `json:"sservers"`
	Figures  []figureJSON `json:"figures"`
	// Bandwidth maps scheme name to its mean read/write bandwidth across
	// every x-axis point of the generated bandwidth figures.
	Bandwidth map[string]bandwidthJSON `json:"aggregate_bandwidth_mbps"`
}

type figureJSON struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

type bandwidthJSON struct {
	ReadMBps     float64 `json:"read_mbps"`
	WriteMBps    float64 `json:"write_mbps"`
	ReadSamples  int     `json:"read_samples"`
	WriteSamples int     `json:"write_samples"`
}

type bandwidthAgg struct {
	readSum, writeSum float64
	readN, writeN     int
}

func (a *bandwidthAgg) summary() bandwidthJSON {
	out := bandwidthJSON{ReadSamples: a.readN, WriteSamples: a.writeN}
	if a.readN > 0 {
		out.ReadMBps = a.readSum / float64(a.readN)
	}
	if a.writeN > 0 {
		out.WriteMBps = a.writeSum / float64(a.writeN)
	}
	return out
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func tableOf(fn func() ([]bench.BandwidthRow, *metrics.Table, error)) func() (*metrics.Table, []bench.BandwidthRow, error) {
	return func() (*metrics.Table, []bench.BandwidthRow, error) {
		rows, tb, err := fn()
		return tb, rows, err
	}
}

// plainTable adapts figure runners whose first result is not a bandwidth
// row set.
func plainTable[T any](fn func() (T, *metrics.Table, error)) func() (*metrics.Table, []bench.BandwidthRow, error) {
	return func() (*metrics.Table, []bench.BandwidthRow, error) {
		_, tb, err := fn()
		return tb, nil, err
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mhabench:", err)
	os.Exit(1)
}
