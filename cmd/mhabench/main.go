// Command mhabench regenerates the tables and figures of the MHA paper's
// evaluation (§V) on the simulated hybrid parallel file system.
//
// Usage:
//
//	mhabench [-fig all|3|7|8|9|10|11|12a|12b|13a|13b|14|meta]
//	         [-scale N] [-h N] [-s N] [-csv]
//
// -scale divides the paper's workload volumes (default 64; 1 reproduces
// the full 16 GB runs). -h/-s override the default 6 HServer : 2 SServer
// cluster. -csv emits CSV instead of aligned text.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mhafs/internal/bench"
	"mhafs/internal/config"
	"mhafs/internal/metrics"
	"mhafs/internal/units"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate (all, 3, 7, 8, 9, 10, 11, 12a, 12b, 13a, 13b, 14, meta, ablation-step, ablation-k, ablation-conc, scaling, extended)")
		scale   = flag.Int64("scale", 64, "divide the paper's workload volumes by this factor")
		hSrv    = flag.Int("h", 6, "number of HServers (HDD-backed)")
		sSrv    = flag.Int("s", 2, "number of SServers (SSD-backed)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		calPath = flag.String("config", "", "JSON calibration file overriding device/network/planner defaults")
	)
	flag.Parse()

	cfg := bench.Default()
	cfg.Scale = *scale
	cfg.Cluster.HServers, cfg.Env.M = *hSrv, *hSrv
	cfg.Cluster.SServers, cfg.Env.N = *sSrv, *sSrv
	if *calPath != "" {
		cal, err := config.Load(*calPath)
		if err != nil {
			fatal(err)
		}
		cfg, err = cal.Apply(cfg)
		if err != nil {
			fatal(err)
		}
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	type runner struct {
		id    string
		extra bool // not part of the paper's figures; excluded from "all"
		fn    func() (*metrics.Table, error)
	}
	runners := []runner{
		{"3", false, func() (*metrics.Table, error) { return bench.Fig3(5), nil }},
		{"7", false, tableOf(cfg.Fig7)},
		{"8", false, func() (*metrics.Table, error) { _, tb, err := cfg.Fig8(); return tb, err }},
		{"9", false, tableOf(cfg.Fig9)},
		{"10", false, tableOf(cfg.Fig10)},
		{"11", false, tableOf(cfg.Fig11)},
		{"12a", false, tableOf(cfg.Fig12a)},
		{"12b", false, tableOf(cfg.Fig12b)},
		{"13a", false, tableOf(cfg.Fig13a)},
		{"13b", false, tableOf(cfg.Fig13b)},
		{"14", false, func() (*metrics.Table, error) { _, tb, err := cfg.Fig14(); return tb, err }},
		{"latency", true, func() (*metrics.Table, error) { _, tb, err := cfg.Latency(); return tb, err }},
		{"extended", true, func() (*metrics.Table, error) { _, tb, err := cfg.Extended(); return tb, err }},
		{"scaling", true, func() (*metrics.Table, error) { _, tb, err := cfg.Scaling(); return tb, err }},
		{"ablation-step", true, func() (*metrics.Table, error) { _, tb, err := cfg.StepAblation(); return tb, err }},
		{"ablation-k", true, func() (*metrics.Table, error) { _, tb, err := cfg.GroupBoundAblation(); return tb, err }},
		{"ablation-straggler", true, func() (*metrics.Table, error) { _, tb, err := cfg.StragglerAblation(); return tb, err }},
		{"ablation-conc", true, func() (*metrics.Table, error) { _, tb, err := cfg.ConcurrencyAblation(); return tb, err }},
		{"meta", false, func() (*metrics.Table, error) {
			_, tb := bench.MetaOverhead([]int64{4 * units.KB, 16 * units.KB, 64 * units.KB, 1 * units.MB})
			return tb, nil
		}},
	}

	want := strings.ToLower(*fig)
	ran := false
	for _, r := range runners {
		if want == "all" && r.extra {
			continue // extras (ablations, scaling, …) run only by name
		}
		if want != "all" && want != r.id {
			continue
		}
		ran = true
		tb, err := r.fn()
		if err != nil {
			fatal(fmt.Errorf("fig %s: %w", r.id, err))
		}
		if *csv {
			if err := tb.FprintCSV(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			if err := tb.Fprint(os.Stdout); err != nil {
				fatal(err)
			}
		}
		fmt.Println()
	}
	if !ran {
		fatal(fmt.Errorf("unknown figure %q (see -help for the list)", *fig))
	}
}

func tableOf(fn func() ([]bench.BandwidthRow, *metrics.Table, error)) func() (*metrics.Table, error) {
	return func() (*metrics.Table, error) {
		_, tb, err := fn()
		return tb, err
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mhabench:", err)
	os.Exit(1)
}
