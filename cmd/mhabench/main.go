// Command mhabench regenerates the tables and figures of the MHA paper's
// evaluation (§V) on the simulated hybrid parallel file system.
//
// Usage:
//
//	mhabench [-fig all|3|7|8|9|10|11|12a|12b|13a|13b|14|meta]
//	         [-scale N|paper|xl] [-h N] [-s N] [-workers N] [-csv] [-json[=FILE]]
//	         [-plan-cache mem|dir|off] [-plan-cache-dir DIR]
//	         [-telemetry] [-telemetry-format json|prom]
//	         [-cpuprofile FILE] [-memprofile FILE]
//	mhabench -scale xl [-xl-groups N] [-xl-apps N] [-xl-procs N]
//	         [-xl-requests N] [-shards N] [-batch=false] [-batch-window S]
//	         [-min-events-per-sec F] [...]
//	mhabench -faults none|straggler|flaky|outage|all [-fault-seed N] [...]
//	mhabench -adaptive [-faults SCENARIO|all] [-fault-seed N] [...]
//	mhabench -compare [-tolerance T] OLD.json NEW.json
//
// -scale selects the workload tier: a number divides the paper's workload
// volumes (default 64; 1 reproduces the full 16 GB runs; "paper" is an
// alias for 64), and "xl" runs the XL simulation tier instead of the
// paper figures — many server groups (-xl-groups of -h/-s servers each,
// 16×8 = 128 by default), many concurrent apps, ≥10⁶ requests on dataless
// clusters, driven through the sharded engine (-shards, -workers) with
// sub-request batching (-batch). The XL table on stdout is deterministic
// at every shard/worker count; the wall-clock throughput goes to stderr,
// and -min-events-per-sec turns it into a CI floor (exit 1 when slower).
// -h/-s override the default 6 HServer : 2 SServer cluster (per group in
// the XL tier). -workers bounds the harness fan-out (independent scheme ×
// figure cells and planner-internal stripe searches run concurrently;
// default 0 uses GOMAXPROCS, 1 is fully serial) — output is byte-identical
// at every worker count. -csv emits CSV instead of aligned text. -json
// additionally writes every generated table — plus the per-scheme
// aggregate bandwidth across the bandwidth figures — to FILE (default
// BENCH_pipeline.json) as machine-readable JSON.
//
// -plan-cache memoizes planner output by content address (default mem):
// figure cells that pose identical planning problems — the same workload
// re-planned across sweep points, fault scenarios, or adaptive variants —
// plan once and share the result. "dir" persists plans under
// -plan-cache-dir so later invocations start warm; "off" plans every cell
// from scratch. Every figure, table and export is byte-identical in every
// mode (plans are pure functions of the cache key); only wall-clock time
// and the plan_cache_* telemetry series change.
//
// -telemetry threads a telemetry registry through every replayed scheme
// and appends the snapshot (canonical JSON, or Prometheus text exposition
// with -telemetry-format prom) to stdout after the tables. Everything is
// measured in virtual time, so two identical invocations emit
// byte-identical snapshots.
//
// -faults runs the resilience figure instead of the paper's: every layout
// scheme replays the Fig. 8 write workload under the named seeded fault
// scenario ("all" sweeps none, straggler, flaky, outage) with the client's
// retry/failover stages enabled, and prints the completion-time and
// fault-action tables. -fault-seed varies the scenario's pseudo-random
// window placement (default 1). The figure is deterministic: byte-identical
// at every -workers setting and across repeated runs.
//
// -adaptive runs the adaptive-scheduling figure instead of the paper's:
// every layout scheme replays the resilience workload twice per scenario —
// static, and with the client's straggler-aware SASIO scheduler enabled
// (per-server latency estimation, reroute, speculative re-issue) — and the
// completion-time and scheduler-action tables are printed. -faults selects
// the scenarios (default all). The figure is deterministic: byte-identical
// at every -workers setting and across repeated runs.
//
// -compare is the CI perf-gate: it diffs the aggregate bandwidth of two
// -json exports and exits nonzero when NEW regressed more than the
// relative tolerance (default 0.05) below OLD for any scheme.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"

	"mhafs/internal/bench"
	"mhafs/internal/cliflags"
	"mhafs/internal/config"
	"mhafs/internal/fault"
	"mhafs/internal/metrics"
	"mhafs/internal/telemetry"
	"mhafs/internal/units"
)

// optFile is a flag that may be given bare (-json → default path) or with
// a value (-json=custom.json).
type optFile struct {
	path string
	def  string
}

func (f *optFile) String() string { return f.path }
func (f *optFile) Set(v string) error {
	switch v {
	case "", "true":
		f.path = f.def
	case "false":
		f.path = ""
	default:
		f.path = v
	}
	return nil
}
func (f *optFile) IsBoolFlag() bool { return true }

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate (all, 3, 7, 8, 9, 10, 11, 12a, 12b, 13a, 13b, 14, meta, ablation-step, ablation-k, ablation-conc, scaling, extended)")
		scale     = flag.String("scale", "64", "workload tier: a divisor of the paper volumes, \"paper\" (= 64), or \"xl\" for the XL simulation tier")
		hSrv      = flag.Int("h", 6, "number of HServers (HDD-backed)")
		sSrv      = flag.Int("s", 2, "number of SServers (SSD-backed)")
		workers   = cliflags.Workers(flag.CommandLine)
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut   = optFile{def: "BENCH_pipeline.json"}
		calPath   = flag.String("config", "", "JSON calibration file overriding device/network/planner defaults")
		telem     = flag.Bool("telemetry", false, "emit the run's telemetry snapshot to stdout after the tables")
		telFormat = flag.String("telemetry-format", "json", "telemetry snapshot format: json (canonical) or prom (Prometheus text)")
		faults    = flag.String("faults", "", "run the resilience figure under this seeded fault scenario (none, straggler, flaky, outage, or all) instead of the paper figures")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the fault scenario's pseudo-random window placement")
		adaptiveF = flag.Bool("adaptive", false, "run the adaptive-scheduling figure (static vs +SASIO per scheme) under the -faults scenarios (default all) instead of the paper figures")
		xlGroups  = flag.Int("xl-groups", 16, "XL tier: server groups (each -h HServers + -s SServers)")
		xlApps    = flag.Int("xl-apps", 4, "XL tier: concurrent apps per group")
		xlProcs   = flag.Int("xl-procs", 32, "XL tier: ranks per app")
		xlReqs    = flag.Int("xl-requests", 1_000_000, "XL tier: total request count")
		shards    = flag.Int("shards", 0, "XL tier: engine shard count for the sharded drive (0 = one per group); output is identical at any setting")
		batch     = flag.Bool("batch", true, "XL tier: merge contiguous same-server sub-requests into single service events")
		batchWin  = flag.Float64("batch-window", 0, "XL tier: batching aggregation window in virtual seconds (0 flushes per instant)")
		minEPS    = flag.Float64("min-events-per-sec", 0, "XL tier: exit nonzero when wall-clock events/sec falls below this floor")
		planCache = cliflags.PlanCache(flag.CommandLine)
		compare   = flag.Bool("compare", false, "perf-gate mode: compare two -json exports (mhabench -compare OLD.json NEW.json)")
		tolerance = flag.Float64("tolerance", 0.05, "relative bandwidth tolerance for -compare (0.05 = 5% slower still passes)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Var(&jsonOut, "json", "also write the results as JSON to this file (bare -json writes BENCH_pipeline.json)")
	flag.Parse()

	if *compare {
		runCompare(flag.Args(), *tolerance)
		return
	}
	if args := flag.Args(); len(args) != 0 {
		fatal(fmt.Errorf("unexpected arguments %q (positional arguments are only used with -compare)", args))
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if strings.EqualFold(*scale, "xl") {
		xl := bench.XLConfig{
			Groups:       *xlGroups,
			HPerGroup:    *hSrv,
			SPerGroup:    *sSrv,
			AppsPerGroup: *xlApps,
			ProcsPerApp:  *xlProcs,
			Requests:     *xlReqs,
			Shards:       *shards,
			Workers:      *workers,
			Batch:        *batch,
			BatchWindow:  *batchWin,
			FaultSeed:    *faultSeed,
		}
		if f := strings.ToLower(*faults); f != "" && f != "all" {
			sc, err := fault.ParseScenario(f)
			if err != nil {
				fatal(err)
			}
			xl.Faults = sc
		}
		runXL(xl, *csv, jsonOut.path, *minEPS)
		return
	}
	scaleDiv := int64(64)
	if !strings.EqualFold(*scale, "paper") {
		v, err := strconv.ParseInt(*scale, 10, 64)
		if err != nil {
			fatal(fmt.Errorf("bad -scale %q (want a number, \"paper\" or \"xl\")", *scale))
		}
		scaleDiv = v
	}

	cfg := bench.Default()
	cfg.Scale = scaleDiv
	cfg.Cluster.HServers, cfg.Env.M = *hSrv, *hSrv
	cfg.Cluster.SServers, cfg.Env.N = *sSrv, *sSrv
	cfg.Workers, cfg.Env.Workers = *workers, *workers
	if *calPath != "" {
		cal, err := config.Load(*calPath)
		if err != nil {
			fatal(err)
		}
		cfg, err = cal.Apply(cfg)
		if err != nil {
			fatal(err)
		}
	}
	var reg *telemetry.Registry
	if *telem {
		switch *telFormat {
		case "json", "prom":
		default:
			fatal(fmt.Errorf("unknown -telemetry-format %q (want json or prom)", *telFormat))
		}
		reg = telemetry.NewRegistry()
		cfg.Telemetry = reg
	}
	cache, err := planCache.Open()
	if err != nil {
		fatal(err)
	}
	cfg.PlanCache = cache
	// The cache's own counters go into the snapshot at exit: they are the
	// only series that legitimately vary with the cache mode (planner
	// search totals and every figure stay byte-identical across modes).
	finish := func() {
		if reg != nil {
			if cache != nil {
				cache.EmitTelemetry(reg)
			}
			emitTelemetry(reg, *telFormat)
		}
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	if *adaptiveF {
		cfg.FaultSeed = *faultSeed
		runAdaptive(cfg, *faults, *csv)
		finish()
		return
	}
	if *faults != "" {
		cfg.FaultSeed = *faultSeed
		runFaults(cfg, *faults, *csv)
		finish()
		return
	}

	type runner struct {
		id    string
		extra bool // not part of the paper's figures; excluded from "all"
		fn    func() (*metrics.Table, []bench.BandwidthRow, error)
	}
	runners := []runner{
		{"3", false, func() (*metrics.Table, []bench.BandwidthRow, error) { return bench.Fig3(5), nil, nil }},
		{"7", false, tableOf(cfg.Fig7)},
		{"8", false, plainTable(cfg.Fig8)},
		{"9", false, tableOf(cfg.Fig9)},
		{"10", false, tableOf(cfg.Fig10)},
		{"11", false, tableOf(cfg.Fig11)},
		{"12a", false, tableOf(cfg.Fig12a)},
		{"12b", false, tableOf(cfg.Fig12b)},
		{"13a", false, tableOf(cfg.Fig13a)},
		{"13b", false, tableOf(cfg.Fig13b)},
		{"14", false, plainTable(cfg.Fig14)},
		{"latency", true, plainTable(cfg.Latency)},
		{"extended", true, plainTable(cfg.Extended)},
		{"scaling", true, plainTable(cfg.Scaling)},
		{"ablation-step", true, plainTable(cfg.StepAblation)},
		{"ablation-k", true, plainTable(cfg.GroupBoundAblation)},
		{"ablation-straggler", true, plainTable(cfg.StragglerAblation)},
		{"ablation-conc", true, plainTable(cfg.ConcurrencyAblation)},
		{"meta", false, func() (*metrics.Table, []bench.BandwidthRow, error) {
			_, tb := bench.MetaOverhead([]int64{4 * units.KB, 16 * units.KB, 64 * units.KB, 1 * units.MB})
			return tb, nil, nil
		}},
	}

	want := strings.ToLower(*fig)
	ran := false
	export := bench.Export{
		Scale:    scaleDiv,
		HServers: *hSrv,
		SServers: *sSrv,
	}
	agg := bench.NewAggregator()
	for _, r := range runners {
		if want == "all" && r.extra {
			continue // extras (ablations, scaling, …) run only by name
		}
		if want != "all" && want != r.id {
			continue
		}
		ran = true
		tb, rows, err := r.fn()
		if err != nil {
			fatal(fmt.Errorf("fig %s: %w", r.id, err))
		}
		if *csv {
			if err := tb.FprintCSV(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			if err := tb.Fprint(os.Stdout); err != nil {
				fatal(err)
			}
		}
		fmt.Println()
		export.AddFigure(r.id, tb)
		agg.Add(rows)
	}
	if !ran {
		fatal(fmt.Errorf("unknown figure %q (see -help for the list)", *fig))
	}
	if jsonOut.path != "" {
		export.Bandwidth = agg.Summary()
		if err := export.WriteFile(jsonOut.path); err != nil {
			fatal(err)
		}
	}
	finish()
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

// runXL runs the XL tier: the deterministic table goes to stdout, the
// wall-clock throughput to stderr, and the optional events/sec floor
// turns the run into a CI gate.
func runXL(cfg bench.XLConfig, csv bool, jsonPath string, floor float64) {
	res, err := bench.RunXL(cfg)
	if err != nil {
		fatal(err)
	}
	tb := res.Table()
	if csv {
		err = tb.FprintCSV(os.Stdout)
	} else {
		err = tb.Fprint(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	fmt.Fprintf(os.Stderr, "mhabench: xl: %d events in %.2fs wall = %.0f events/sec, ~%.2f allocs/op\n",
		res.Events, res.WallSeconds, res.EventsPerSec, res.AllocsPerOp)
	if jsonPath != "" {
		export := bench.Export{
			Scale:        1,
			HServers:     cfg.HPerGroup,
			SServers:     cfg.SPerGroup,
			ScaleTier:    "xl",
			EventsPerSec: res.EventsPerSec,
			AllocsPerOp:  res.AllocsPerOp,
		}
		export.AddFigure("xl", tb)
		if err := export.WriteFile(jsonPath); err != nil {
			fatal(err)
		}
	}
	if floor > 0 && res.EventsPerSec < floor {
		fatal(fmt.Errorf("xl: %.0f events/sec below the -min-events-per-sec floor %.0f", res.EventsPerSec, floor))
	}
}

// runFaults runs the resilience figure and prints both of its tables.
func runFaults(cfg bench.Config, name string, csv bool) {
	var scenarios []fault.Scenario
	if strings.ToLower(name) != "all" {
		sc, err := fault.ParseScenario(name)
		if err != nil {
			fatal(err)
		}
		scenarios = []fault.Scenario{sc}
	}
	_, tables, err := cfg.FigFaults(scenarios)
	if err != nil {
		fatal(err)
	}
	for _, tb := range tables {
		if csv {
			err = tb.FprintCSV(os.Stdout)
		} else {
			err = tb.Fprint(os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

// runAdaptive runs the adaptive-scheduling figure and prints both of its
// tables. name selects the scenarios like runFaults does; empty means all.
func runAdaptive(cfg bench.Config, name string, csv bool) {
	var scenarios []fault.Scenario
	if name != "" && strings.ToLower(name) != "all" {
		sc, err := fault.ParseScenario(name)
		if err != nil {
			fatal(err)
		}
		scenarios = []fault.Scenario{sc}
	}
	_, tables, err := cfg.FigAdaptive(scenarios)
	if err != nil {
		fatal(err)
	}
	for _, tb := range tables {
		if csv {
			err = tb.FprintCSV(os.Stdout)
		} else {
			err = tb.Fprint(os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

// emitTelemetry writes the registry snapshot to stdout in the chosen
// format.
func emitTelemetry(reg *telemetry.Registry, format string) {
	var err error
	if format == "prom" {
		err = reg.WritePrometheus(os.Stdout)
	} else {
		err = reg.WriteJSON(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

// runCompare is the perf-gate: exit 0 when NEW holds OLD's aggregate
// bandwidth within the tolerance, 1 on regression, 2 on usage/IO errors.
func runCompare(args []string, tolerance float64) {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "mhabench: -compare needs exactly two arguments: OLD.json NEW.json")
		os.Exit(2)
	}
	oldExp, err := bench.LoadExport(args[0])
	if err != nil {
		fatal(err)
	}
	newExp, err := bench.LoadExport(args[1])
	if err != nil {
		fatal(err)
	}
	regs, err := bench.CompareExports(oldExp, newExp, tolerance)
	if err != nil {
		fatal(err)
	}
	if len(regs) > 0 {
		// Worst first (CompareExports orders by shortfall) with the gate's
		// setting up front, so a red CI log reads top-down.
		fmt.Fprintf(os.Stderr, "mhabench: %d regression(s) beyond the %.0f%% tolerance, worst first:\n",
			len(regs), tolerance*100)
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "mhabench: REGRESSION:", r)
		}
		os.Exit(1)
	}
	fmt.Printf("perf-gate ok: %s within %.0f%% of %s (%d schemes gated)\n",
		args[1], tolerance*100, args[0], len(oldExp.Bandwidth))
}

func tableOf(fn func() ([]bench.BandwidthRow, *metrics.Table, error)) func() (*metrics.Table, []bench.BandwidthRow, error) {
	return func() (*metrics.Table, []bench.BandwidthRow, error) {
		rows, tb, err := fn()
		return tb, rows, err
	}
}

// plainTable adapts figure runners whose first result is not a bandwidth
// row set.
func plainTable[T any](fn func() (T, *metrics.Table, error)) func() (*metrics.Table, []bench.BandwidthRow, error) {
	return func() (*metrics.Table, []bench.BandwidthRow, error) {
		_, tb, err := fn()
		return tb, nil, err
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mhabench:", err)
	os.Exit(1)
}
