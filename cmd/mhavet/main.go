// Command mhavet is the repository's domain-aware static analyzer: it
// machine-checks the determinism, unit-safety, pipeline and
// concurrency-scope invariants the reproduction's bit-for-bit figure
// guarantee rests on (goroutines and sync primitives are confined to the
// sanctioned packages — everything else fans out through
// internal/parfan).
//
// Usage:
//
//	go run ./cmd/mhavet ./...          # analyze the whole module (CI)
//	go run ./cmd/mhavet ./internal/sim # analyze one package
//	go run ./cmd/mhavet -list          # describe the analyzers
//
// mhavet prints one gofmt-style "file:line:col: analyzer/rule: message"
// diagnostic per finding and exits 1 when any are found, 2 on load
// errors, 0 on a clean tree. Findings are suppressed at the site with a
// "//mhavet:allow <rule>" comment on the same or the preceding line; see
// DESIGN.md §10 for the contract each analyzer enforces.
//
// The analyzer is built on go/parser and go/types only — no
// golang.org/x/tools — so it runs offline from a bare checkout.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mhafs/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	quiet := flag.Bool("q", false, "suppress the success summary")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mhavet [-list] [-q] [./... | ./dir | ./dir/...]")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	pkgs, err := selectPackages(mod, cwd, flag.Args())
	if err != nil {
		fatal(err)
	}
	filtered := &analysis.Module{Path: mod.Path, Root: mod.Root, Fset: mod.Fset, Pkgs: pkgs}
	diags := analysis.Run(filtered, analyzers)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s:%d:%d: %s/%s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Rule, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mhavet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "mhavet: %d package(s) clean (%d analyzers)\n", len(pkgs), len(analyzers))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mhavet:", err)
	os.Exit(2)
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// selectPackages resolves go-style patterns (./..., ./dir, ./dir/...)
// against the loaded module. No arguments means ./... .
func selectPackages(mod *analysis.Module, cwd string, patterns []string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	keep := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		abs := pat
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, pat)
		}
		rel, err := filepath.Rel(mod.Root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("pattern %q is outside module %s", pat, mod.Path)
		}
		ip := mod.Path
		if rel != "." {
			ip = mod.Path + "/" + filepath.ToSlash(rel)
		}
		matched := false
		for _, p := range mod.Pkgs {
			if p.Path == ip || (recursive && (ip == mod.Path || strings.HasPrefix(p.Path, ip+"/"))) {
				keep[p.Path] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	var out []*analysis.Package
	for _, p := range mod.Pkgs {
		if keep[p.Path] {
			out = append(out, p)
		}
	}
	return out, nil
}
