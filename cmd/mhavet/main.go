// Command mhavet is the repository's domain-aware static analyzer: it
// machine-checks the determinism, unit-safety, pipeline, allocation and
// concurrency-scope invariants the reproduction's bit-for-bit figure
// guarantee rests on (goroutines and sync primitives are confined to the
// sanctioned packages — everything else fans out through
// internal/parfan; heap allocations reachable from the HotPathFunctions
// roots are flagged by allocheck; nondeterministic values flowing into
// figure emission are flagged by flowcheck).
//
// Usage:
//
//	go run ./cmd/mhavet ./...                      # analyze the whole module (CI)
//	go run ./cmd/mhavet ./internal/sim             # analyze one package
//	go run ./cmd/mhavet -format sarif ./...        # SARIF 2.1.0 on stdout
//	go run ./cmd/mhavet -baseline mhavet_baseline.json ./...
//	go run ./cmd/mhavet -list                      # describe the analyzers
//
// The default -format text prints one gofmt-style
// "file:line:col: analyzer/rule: message" diagnostic per finding;
// -format json emits a flat array with stable fingerprints, and
// -format sarif a minimal SARIF 2.1.0 log for code-scanning upload.
// Paths in every format are module-root-relative.
//
// -baseline names a committed JSON file mapping finding fingerprints to
// justifications; baselined findings are suppressed in every format, and
// stale entries (matching nothing) are themselves an error so the file
// cannot rot. Fingerprints hash path, analyzer, rule and message — not
// the line number — so unrelated edits don't invalidate them.
//
// Exit codes are uniform across formats: 0 clean (after baseline and
// allow-comment suppression), 1 findings, 2 load or usage errors.
// Findings are suppressed at the site with a "//mhavet:allow <rule>"
// comment on the same or the preceding line; see DESIGN.md §10 and §15
// for the contract each analyzer enforces.
//
// The analyzer is built on go/parser and go/types only — no
// golang.org/x/tools — so it runs offline from a bare checkout.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mhafs/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	quiet := flag.Bool("q", false, "suppress the success summary")
	format := flag.String("format", "text", "output format: text, json, or sarif")
	baselinePath := flag.String("baseline", "", "JSON baseline file of fingerprint -> justification")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mhavet [-list] [-q] [-format text|json|sarif] [-baseline file] [./... | ./dir | ./dir/...]")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *format != "text" && *format != "json" && *format != "sarif" {
		fatal(fmt.Errorf("unknown format %q (want text, json, or sarif)", *format))
	}

	var baseline analysis.Baseline
	if *baselinePath != "" {
		b, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		baseline = b
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	pkgs, err := selectPackages(mod, cwd, flag.Args())
	if err != nil {
		fatal(err)
	}
	filtered := &analysis.Module{Path: mod.Path, Root: mod.Root, Fset: mod.Fset, Pkgs: pkgs}
	findings := analysis.Fingerprints(mod, analysis.Run(filtered, analyzers))

	suppressed := 0
	var stale []string
	if baseline != nil {
		stale = baseline.Stale(findings)
		findings, suppressed = baseline.Filter(findings)
	}

	switch *format {
	case "text":
		err = analysis.WriteText(os.Stdout, findings)
	case "json":
		err = analysis.WriteJSON(os.Stdout, findings)
	case "sarif":
		err = analysis.WriteSARIF(os.Stdout, analyzers, findings)
	}
	if err != nil {
		fatal(err)
	}

	for _, fp := range stale {
		fmt.Fprintf(os.Stderr, "mhavet: stale baseline entry %s: %s\n", fp, baseline[fp])
	}
	if len(findings) > 0 || len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "mhavet: %d finding(s), %d baselined, %d stale baseline entr(ies) in %d package(s)\n",
			len(findings), suppressed, len(stale), len(pkgs))
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "mhavet: %d package(s) clean (%d analyzers, %d baselined)\n",
			len(pkgs), len(analyzers), suppressed)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mhavet:", err)
	os.Exit(2)
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// selectPackages resolves go-style patterns (./..., ./dir, ./dir/...)
// against the loaded module. No arguments means ./... .
func selectPackages(mod *analysis.Module, cwd string, patterns []string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	keep := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		abs := pat
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, pat)
		}
		rel, err := filepath.Rel(mod.Root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("pattern %q is outside module %s", pat, mod.Path)
		}
		ip := mod.Path
		if rel != "." {
			ip = mod.Path + "/" + filepath.ToSlash(rel)
		}
		matched := false
		for _, p := range mod.Pkgs {
			if p.Path == ip || (recursive && (ip == mod.Path || strings.HasPrefix(p.Path, ip+"/"))) {
				keep[p.Path] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	var out []*analysis.Package
	for _, p := range mod.Pkgs {
		if keep[p.Path] {
			out = append(out, p)
		}
	}
	return out, nil
}
