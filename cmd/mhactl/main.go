// Command mhactl inspects traces and layout plans: the offline half of the
// MHA pipeline, without running a simulation.
//
// Subcommands:
//
//	mhactl stats  -trace t.txt             summarize a trace
//	mhactl hist   -trace t.txt             request-size histogram
//	mhactl epochs -trace t.txt             concurrency epochs
//	mhactl group  -trace t.txt [-k 16]     Algorithm 1 request grouping
//	mhactl sig    -trace t.txt             per-stream I/O signatures
//	mhactl plan   -trace t.txt -scheme MHA [-h 6 -s 2] show the plan
//	mhactl replay -trace t.txt -scheme MHA [-telemetry] simulate a replay
//	              [-faults none|straggler|flaky|outage] [-fault-seed N]
//	              inject a seeded fault scenario with resilience enabled
//	              [-adaptive]  enable the straggler-aware SASIO scheduler
//	              [-plan-cache mem|dir|off] [-plan-cache-dir DIR]
//	              memoize plans by content address (plan and replay both
//	              accept these; output is identical in every mode)
//	mhactl convert -trace in.txt -o out.bin [-binary=true]  convert formats
//	mhactl drt    -db drt.db               dump a persisted DRT
//	mhactl rst    -db rst.db               dump a persisted RST
//	mhactl plan-submit -service-dir d -tenant t -submitter who \
//	              -trace t.txt -scheme MHA   submit a job to the plan
//	              service (idempotent: an identical descriptor returns the
//	              original job ID and is recorded as a duplicate)
//	mhactl plan-status -service-dir d [-tenant t] [-job ID]
//	              summarize the service's dedupe ledger per job
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"

	"mhafs/internal/bench"
	"mhafs/internal/cliflags"
	"mhafs/internal/cluster"
	"mhafs/internal/fault"
	"mhafs/internal/layout"
	"mhafs/internal/metrics"
	"mhafs/internal/pattern"
	"mhafs/internal/plancache"
	"mhafs/internal/region"
	"mhafs/internal/service"
	"mhafs/internal/stripe"
	"mhafs/internal/telemetry"
	"mhafs/internal/trace"
	"mhafs/internal/units"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	tracePath := fs.String("trace", "", "trace file (text format)")
	db := fs.String("db", "", "table database path (drt/rst)")
	schemeStr := fs.String("scheme", "MHA", "layout scheme for plan")
	hSrv := fs.Int("h", 6, "HServers")
	sSrv := fs.Int("s", 2, "SServers")
	k := fs.Int("k", 16, "maximum group count")
	workers := cliflags.Workers(fs)
	window := fs.Float64("window", pattern.DefaultEpochWindow, "concurrency window (s)")
	outPath := fs.String("o", "", "output path (convert)")
	toBinary := fs.Bool("binary", true, "convert to binary (false: to text)")
	faults := fs.String("faults", "", "replay: inject this seeded fault scenario (none, straggler, flaky, outage) with the resilience stages enabled")
	faultSeed := fs.Int64("fault-seed", 1, "replay: seed for the fault scenario's window placement")
	adaptiveF := fs.Bool("adaptive", false, "replay: enable the straggler-aware SASIO scheduler (latency estimation, reroute, speculative re-issue)")
	planCache := cliflags.PlanCache(fs)
	serviceDir := fs.String("service-dir", "", "plan service state root: the dedupe ledger plus a plancache/ subdirectory (plan-submit, plan-status)")
	tenant := fs.String("tenant", "", "plan-submit/plan-status: owning tenant")
	submitter := fs.String("submitter", "", "plan-submit: who is triggering the job (recorded in the ledger)")
	jobID := fs.String("job", "", "plan-status: restrict to one job ID")
	telem := fs.Bool("telemetry", false, "replay: emit the telemetry snapshot to stdout after the tables")
	telFormat := fs.String("telemetry-format", "json", "telemetry snapshot format: json (canonical) or prom (Prometheus text)")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile to this file")
	if err := fs.Parse(os.Args[2:]); err != nil {
		fatal(err)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	switch cmd {
	case "stats":
		tr := loadTrace(*tracePath)
		fmt.Println(tr.Summarize())
	case "hist":
		tr := loadTrace(*tracePath)
		tb := metrics.NewTable("request-size histogram", "size", "count")
		for _, b := range pattern.SizeHistogram(tr) {
			tb.AddRow(units.Bytes(b.Size).String(), b.Count)
		}
		tb.Fprint(os.Stdout)
	case "epochs":
		tr := loadTrace(*tracePath)
		tb := metrics.NewTable("concurrency epochs", "epoch", "requests", "t0", "bytes")
		for i, ep := range pattern.Epochs(tr, *window) {
			var bytes int64
			for _, r := range ep {
				bytes += r.Size
			}
			tb.AddRow(i, len(ep), fmt.Sprintf("%.6f", ep[0].Time), units.Bytes(bytes).String())
		}
		tb.Fprint(os.Stdout)
	case "group":
		tr := loadTrace(*tracePath)
		ann := pattern.Annotate(tr, *window)
		pts := pattern.Points(ann)
		kk := cluster.BoundK(pts, *k)
		opts := cluster.DefaultOptions()
		opts.Workers = *workers
		res, err := cluster.Group(pts, kk, opts)
		if err != nil {
			fatal(err)
		}
		tb := metrics.NewTable(
			fmt.Sprintf("Algorithm 1 grouping (k=%d, iters=%d)", res.K(), res.Iters),
			"group", "requests", "center size", "center conc")
		for g, members := range res.Groups {
			tb.AddRow(g, len(members),
				units.Bytes(int64(res.Centers[g].X)).String(),
				fmt.Sprintf("%.1f", res.Centers[g].Y))
		}
		tb.Fprint(os.Stdout)
	case "sig":
		tr := loadTrace(*tracePath)
		tb := metrics.NewTable("I/O signatures (per rank, file stream)",
			"file", "rank", "kind", "requests", "stride", "confidence")
		for _, sg := range pattern.Signatures(tr) {
			tb.AddRow(sg.File, sg.Rank, sg.Kind.String(), sg.Requests,
				units.Bytes(sg.Stride).String(), fmt.Sprintf("%.2f", sg.Confidence))
		}
		tb.Fprint(os.Stdout)
	case "plan":
		tr := loadTrace(*tracePath)
		scheme, err := layout.ParseScheme(*schemeStr)
		if err != nil {
			fatal(err)
		}
		env := layout.DefaultEnv()
		env.M, env.N = *hSrv, *sSrv
		env.MaxRegions = *k
		env.Workers = *workers
		planner, err := layout.NewPlanner(scheme)
		if err != nil {
			fatal(err)
		}
		cache, err := planCache.Open()
		if err != nil {
			fatal(err)
		}
		plan, err := plancache.Wrap(planner, cache).Plan(tr, env)
		if err != nil {
			fatal(err)
		}
		tb := metrics.NewTable(
			fmt.Sprintf("%v plan: %d regions, %d mappings", scheme, len(plan.Regions), len(plan.Mappings)),
			"region", "layout", "size", "model cost (s)")
		for _, r := range plan.Regions {
			tb.AddRow(r.File, r.Layout.String(), units.Bytes(r.Size).String(),
				fmt.Sprintf("%.6f", r.Cost))
		}
		tb.Fprint(os.Stdout)
	case "convert":
		tr := loadTrace(*tracePath)
		if *outPath == "" {
			fatal(fmt.Errorf("missing -o"))
		}
		out, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer out.Close()
		enc := trace.Write
		if *toBinary {
			enc = trace.WriteBinary
		}
		if err := enc(out, tr); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mhactl: wrote %d records to %s\n", len(tr), *outPath)
	case "replay":
		tr := loadTrace(*tracePath)
		scheme, err := layout.ParseScheme(*schemeStr)
		if err != nil {
			fatal(err)
		}
		cfg := bench.Default()
		cfg.Cluster.HServers, cfg.Env.M = *hSrv, *hSrv
		cfg.Cluster.SServers, cfg.Env.N = *sSrv, *sSrv
		cfg.Env.MaxRegions = *k
		cfg.Workers, cfg.Env.Workers = *workers, *workers
		if *faults != "" {
			sc, err := fault.ParseScenario(*faults)
			if err != nil {
				fatal(err)
			}
			cfg.Faults, cfg.FaultSeed = sc, *faultSeed
		}
		cfg.Adaptive = *adaptiveF
		var reg *telemetry.Registry
		if *telem {
			reg = telemetry.NewRegistry()
			cfg.Telemetry = reg
		}
		cache, err := planCache.Open()
		if err != nil {
			fatal(err)
		}
		cfg.PlanCache = cache
		run, err := cfg.RunScheme(scheme, tr)
		if err != nil {
			fatal(err)
		}
		if reg != nil && cache != nil {
			cache.EmitTelemetry(reg)
		}
		res := run.Result
		lat := res.LatencySummary()
		tb := metrics.NewTable(
			fmt.Sprintf("replay under %v (%dH+%dS)", scheme, *hSrv, *sSrv),
			"metric", "value")
		tb.AddRow("requests", res.Ops)
		tb.AddRow("makespan (s)", fmt.Sprintf("%.6f", res.Makespan))
		tb.AddRow("aggregate MB/s", res.Bandwidth())
		tb.AddRow("read MB/s", res.ReadBandwidth())
		tb.AddRow("write MB/s", res.WriteBandwidth())
		tb.AddRow("latency mean (ms)", fmt.Sprintf("%.3f", lat.Mean*1e3))
		tb.AddRow("latency p50 (ms)", fmt.Sprintf("%.3f", lat.P50*1e3))
		tb.AddRow("latency p95 (ms)", fmt.Sprintf("%.3f", lat.P95*1e3))
		tb.AddRow("latency p99 (ms)", fmt.Sprintf("%.3f", lat.P99*1e3))
		tb.AddRow("regions", len(run.Plan.Regions))
		tb.Fprint(os.Stdout)
		tb2 := metrics.NewTable("per-server busy time (s)", "server", "busy", "bytes")
		for _, st := range res.PerServer {
			tb2.AddRow(st.Name, fmt.Sprintf("%.6f", st.BusyTime), st.ReadBytes+st.WriteBytes)
		}
		tb2.Fprint(os.Stdout)
		if reg != nil {
			var werr error
			switch *telFormat {
			case "prom":
				werr = reg.WritePrometheus(os.Stdout)
			case "json":
				werr = reg.WriteJSON(os.Stdout)
			default:
				werr = fmt.Errorf("unknown -telemetry-format %q (want json or prom)", *telFormat)
			}
			if werr != nil {
				fatal(werr)
			}
		}
	case "plan-submit":
		if *serviceDir == "" {
			fatal(fmt.Errorf("missing -service-dir"))
		}
		if *tenant == "" {
			fatal(fmt.Errorf("missing -tenant"))
		}
		tr := loadTrace(*tracePath)
		scheme, err := layout.ParseScheme(*schemeStr)
		if err != nil {
			fatal(err)
		}
		env := layout.DefaultEnv()
		env.M, env.N = *hSrv, *sSrv
		env.MaxRegions = *k
		env.Workers = *workers
		// The service's plan cache lives under the service directory so
		// identical workloads — resubmitted or cross-tenant — reuse plans
		// across invocations; -plan-cache off opts out.
		var cache *plancache.Cache
		if *planCache.Mode != "off" {
			cache, err = plancache.New(plancache.Options{Dir: filepath.Join(*serviceDir, "plancache")})
			if err != nil {
				fatal(err)
			}
		}
		svc, err := service.New(service.Config{
			Workers: *workers, Cache: cache, LedgerDir: *serviceDir,
		})
		if err != nil {
			fatal(err)
		}
		defer svc.Close()
		who := *submitter
		if who == "" {
			who = "mhactl"
		}
		receipt, err := svc.Submit(service.Descriptor{
			Tenant: *tenant, Scheme: scheme, Env: env, Trace: tr,
		}, who)
		if err != nil {
			fatal(err)
		}
		if err := svc.Run(); err != nil {
			fatal(err)
		}
		st, _ := svc.Status(receipt.ID)
		tb := metrics.NewTable("plan-submit receipt", "field", "value")
		tb.AddRow("job", receipt.ID.String())
		tb.AddRow("tenant", *tenant)
		tb.AddRow("scheme", scheme.String())
		tb.AddRow("duplicate", receipt.Duplicate)
		tb.AddRow("state", st.State)
		tb.AddRow("attempts", st.Attempts)
		// Region counts exist only for jobs planned by this invocation; a
		// duplicate of a prior invocation's job answers from the ledger
		// (and its plan from the dir cache) without re-planning.
		if st.State == "done" && st.PlanKey != "" {
			tb.AddRow("regions", st.Regions)
			tb.AddRow("mappings", st.Mappings)
		}
		if st.Error != "" {
			tb.AddRow("error", st.Error)
		}
		tb.Fprint(os.Stdout)
	case "plan-status":
		if *serviceDir == "" {
			fatal(fmt.Errorf("missing -service-dir"))
		}
		entries, err := service.ReadLedger(*serviceDir)
		if err != nil {
			fatal(err)
		}
		tb := metrics.NewTable("plan service ledger", "job", "tenant", "scheme",
			"state", "submissions", "duplicates", "first", "last")
		for _, s := range service.SummarizeLedger(entries) {
			if *tenant != "" && s.Tenant != *tenant {
				continue
			}
			if *jobID != "" && s.Job != *jobID {
				continue
			}
			tb.AddRow(s.Job, s.Tenant, s.Scheme, s.State, s.Submissions, s.Duplicates,
				fmt.Sprintf("%.3f", s.FirstSubmit), fmt.Sprintf("%.3f", s.LastEntry))
		}
		tb.Fprint(os.Stdout)
	case "drt":
		d, err := region.OpenDRT(*db)
		if err != nil {
			fatal(err)
		}
		defer d.Close()
		tb := metrics.NewTable(fmt.Sprintf("DRT: %d mappings", d.Len()),
			"o_file", "o_offset", "r_file", "r_offset", "length")
		for _, f := range d.Files() {
			for _, m := range d.Mappings(f) {
				tb.AddRow(m.OFile, m.OOffset, m.RFile, m.ROffset, m.Length)
			}
		}
		tb.Fprint(os.Stdout)
	case "rst":
		r, err := region.OpenRST(*db)
		if err != nil {
			fatal(err)
		}
		defer r.Close()
		tb := metrics.NewTable(fmt.Sprintf("RST: %d regions", r.Len()),
			"region", "layout")
		type row struct {
			name string
			l    string
		}
		var rows []row
		r.ForEach(func(name string, l stripe.Layout) bool {
			rows = append(rows, row{name, l.String()})
			return true
		})
		sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
		for _, rr := range rows {
			tb.AddRow(rr.name, rr.l)
		}
		tb.Fprint(os.Stdout)
	default:
		usage()
	}
}

func loadTrace(path string) trace.Trace {
	if path == "" {
		fatal(fmt.Errorf("missing -trace"))
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	// Auto-detect the binary format by its magic.
	head := make([]byte, 4)
	n, _ := io.ReadFull(f, head)
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		fatal(err)
	}
	var tr trace.Trace
	if n == 4 && string(head) == "MHTR" {
		tr, err = trace.ReadBinary(f)
	} else {
		tr, err = trace.Read(f)
	}
	if err != nil {
		fatal(err)
	}
	return tr
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mhactl <stats|hist|epochs|group|sig|plan|replay|convert|drt|rst|plan-submit|plan-status> [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mhactl:", err)
	os.Exit(1)
}
