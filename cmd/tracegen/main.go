// Command tracegen emits synthetic I/O traces in the text trace format,
// one record per line. The generators reproduce the access structure of
// the workloads in the MHA paper's evaluation: the IOR and HPIO
// micro-benchmarks, the BTIO macro-benchmark, and the LANL App2, LU
// decomposition and sparse Cholesky application traces.
//
// Usage:
//
//	tracegen -workload ior  -op write -procs 32 -sizes 128KB,256KB -filesize 256MB
//	tracegen -workload hpio -op read  -procs 16 -regions 512 -sizes 16KB,32KB,64KB
//	tracegen -workload btio -procs 16 -steps 40
//	tracegen -workload lanl -procs 8 -loops 32
//	tracegen -workload lu   -slabs 32
//	tracegen -workload chol -panels 32
//	tracegen -workload xl   -procs 64 -requests 100000 -sizes 64KB,256KB
//	tracegen ... -o trace.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mhafs/internal/trace"
	"mhafs/internal/units"
	"mhafs/internal/workload"
)

func main() {
	var (
		kind     = flag.String("workload", "ior", "workload: ior, hpio, btio, lanl, lu, chol, xl")
		opStr    = flag.String("op", "write", "operation for ior/hpio/btio/lanl: read or write")
		procs    = flag.Int("procs", 32, "process count (square for btio)")
		sizesStr = flag.String("sizes", "64KB", "comma-separated request sizes (ior/hpio)")
		procsMix = flag.String("procsmix", "", "comma-separated process-count phases for ior (overrides -procs)")
		fileSize = flag.String("filesize", "256MB", "total bytes accessed (ior)")
		regions  = flag.Int("regions", 512, "region count (hpio)")
		spacing  = flag.String("spacing", "0", "region spacing (hpio)")
		steps    = flag.Int("steps", 40, "time steps (btio)")
		loops    = flag.Int("loops", 32, "loops (lanl)")
		slabs    = flag.Int("slabs", 32, "slabs (lu)")
		panels   = flag.Int("panels", 32, "panels (chol)")
		requests = flag.Int("requests", 100000, "total record count (xl)")
		seed     = flag.Int64("seed", 1, "generator seed")
		shuffle  = flag.Bool("shuffle", false, "shuffle ior phases")
		file     = flag.String("file", "", "logical file name (default derived from workload)")
		out      = flag.String("o", "", "output path (default stdout)")
		binary   = flag.Bool("binary", false, "emit the compact binary format instead of text")
	)
	flag.Parse()

	op, err := trace.ParseOp(*opStr)
	if err != nil {
		fatal(err)
	}
	name := *file
	if name == "" {
		name = *kind + ".dat"
	}

	var tr trace.Trace
	switch strings.ToLower(*kind) {
	case "ior":
		sizes, err := parseSizes(*sizesStr)
		if err != nil {
			fatal(err)
		}
		fs, err := units.ParseBytes(*fileSize)
		if err != nil {
			fatal(err)
		}
		pcs := []int{*procs}
		if *procsMix != "" {
			pcs = nil
			for _, p := range strings.Split(*procsMix, ",") {
				var v int
				if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &v); err != nil {
					fatal(fmt.Errorf("bad procsmix entry %q: %w", p, err))
				}
				pcs = append(pcs, v)
			}
		}
		tr, err = workload.IOR(workload.IORConfig{
			File: name, Op: op, Sizes: sizes, Procs: pcs,
			FileSize: int64(fs), Shuffle: *shuffle, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
	case "hpio":
		sizes, err := parseSizes(*sizesStr)
		if err != nil {
			fatal(err)
		}
		sp, err := units.ParseBytes(*spacing)
		if err != nil {
			fatal(err)
		}
		tr, err = workload.HPIO(workload.HPIOConfig{
			File: name, Op: op, Procs: *procs,
			RegionCount: *regions, RegionSpacing: int64(sp), RegionSizes: sizes,
		})
		if err != nil {
			fatal(err)
		}
	case "btio":
		cfg := workload.DefaultBTIO(*procs, op)
		cfg.File = name
		cfg.Steps = *steps
		var err error
		tr, err = workload.BTIO(cfg)
		if err != nil {
			fatal(err)
		}
	case "lanl":
		var err error
		tr, err = workload.LANL(workload.LANLConfig{
			File: name, Op: op, Procs: *procs, Loops: *loops,
		})
		if err != nil {
			fatal(err)
		}
	case "lu":
		cfg := workload.DefaultLU()
		cfg.Slabs = *slabs
		cfg.Seed = *seed
		var err error
		tr, err = workload.LU(cfg)
		if err != nil {
			fatal(err)
		}
	case "xl":
		sizes, err := parseSizes(*sizesStr)
		if err != nil {
			fatal(err)
		}
		tr, err = workload.XLApp(workload.XLConfig{
			File: name, Procs: *procs, Requests: *requests, Sizes: sizes,
		})
		if err != nil {
			fatal(err)
		}
	case "chol", "cholesky":
		cfg := workload.DefaultCholesky()
		cfg.Panels = *panels
		cfg.Seed = *seed
		var err error
		tr, err = workload.Cholesky(cfg)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown workload %q", *kind))
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := trace.Write
	if *binary {
		enc = trace.WriteBinary
	}
	if err := enc(w, tr); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %s\n", tr.Summarize())
}

func parseSizes(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		b, err := units.ParseBytes(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, int64(b))
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
