package mhafs

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

// TestEndToEndPipeline drives the full paper workflow through the public
// API: profiled first run → MHA optimization → optimized re-run, with
// data integrity verified across the migration.
func TestEndToEndPipeline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster.HServers, cfg.Cluster.SServers = 4, 2
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// First run: write a heterogeneous pattern (small and large records).
	h, err := sys.Open("app.dat", 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	type ext struct {
		off  int64
		data []byte
	}
	var exts []ext
	off := int64(0)
	for loop := 0; loop < 6; loop++ {
		small := make([]byte, 8<<10)
		rng.Read(small)
		exts = append(exts, ext{off, small})
		if _, err := h.WriteAtSync(small, off); err != nil {
			t.Fatal(err)
		}
		off += int64(len(small))
		large := make([]byte, 192<<10)
		rng.Read(large)
		exts = append(exts, ext{off, large})
		if _, err := h.WriteAtSync(large, off); err != nil {
			t.Fatal(err)
		}
		off += int64(len(large))
	}
	if got := len(sys.Trace()); got != 12 {
		t.Fatalf("traced %d records, want 12", got)
	}

	// Optimize with MHA.
	if err := sys.Optimize(MHA, nil); err != nil {
		t.Fatal(err)
	}
	plan := sys.Plan()
	if plan.Scheme != MHA || len(plan.Regions) == 0 {
		t.Fatalf("plan = %+v", plan)
	}
	// Re-optimizing on the same trace is allowed (dynamic mode) and bumps
	// the generation.
	if err := sys.Optimize(MHA, nil); err != nil {
		t.Fatalf("re-optimize: %v", err)
	}
	if sys.Generation() != 1 {
		t.Errorf("Generation = %d, want 1", sys.Generation())
	}

	// Second run: every extent must read back intact through redirection.
	sys.SetTracing(false)
	for _, e := range exts {
		buf := make([]byte, len(e.data))
		if _, err := h.ReadAtSync(buf, e.off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, e.data) {
			t.Fatalf("extent at %d corrupted after migration", e.off)
		}
	}
	if sys.Now() <= 0 {
		t.Error("virtual clock did not advance")
	}
}

func TestOptimizeRequiresTrace(t *testing.T) {
	sys, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Optimize(MHA, nil); err == nil {
		t.Error("Optimize with empty trace accepted")
	}
	if !strings.Contains(sys.Plan().Scheme.String(), "DEF") {
		// Zero Plan has Scheme DEF (zero value); just ensure no panic.
		t.Errorf("unexpected plan scheme %v", sys.Plan().Scheme)
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if got := len(sys.Cluster().Servers()); got != 8 {
		t.Errorf("default cluster has %d servers, want 8", got)
	}
}

func TestReplayThroughFacade(t *testing.T) {
	sys, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	tr, err := IOR(IORConfig{
		File: "ior.dat", Op: OpWrite,
		Sizes: []int64{64 << 10}, Procs: []int{8},
		FileSize: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetTracing(false)
	res, err := sys.Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != len(tr) || res.Bandwidth() <= 0 {
		t.Errorf("replay = %+v", res)
	}
}

func TestTracingToggleAndReset(t *testing.T) {
	sys, _ := NewSystem(DefaultConfig())
	defer sys.Close()
	h, _ := sys.Open("f", 0)
	h.WriteAtSync(make([]byte, 4096), 0)
	if len(sys.RawTrace()) != 1 {
		t.Fatal("trace not collected")
	}
	sys.SetTracing(false)
	h.WriteAtSync(make([]byte, 4096), 4096)
	if len(sys.RawTrace()) != 1 {
		t.Error("disabled tracer recorded")
	}
	sys.ResetTrace()
	if len(sys.RawTrace()) != 0 {
		t.Error("ResetTrace did not clear")
	}
}

// All four schemes must be optimizable through the facade.
func TestOptimizeAllSchemes(t *testing.T) {
	for _, scheme := range []Scheme{DEF, AAL, HARL, MHA} {
		cfg := DefaultConfig()
		cfg.Cluster.HServers, cfg.Cluster.SServers = 2, 2
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		h, _ := sys.Open("f", 0)
		for i := 0; i < 8; i++ {
			if _, err := h.WriteAtSync(make([]byte, 32<<10), int64(i)*32<<10); err != nil {
				t.Fatal(err)
			}
		}
		if err := sys.Optimize(scheme, nil); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if sys.Plan().Scheme != scheme {
			t.Errorf("plan scheme = %v, want %v", sys.Plan().Scheme, scheme)
		}
		// Post-optimization I/O must still work.
		buf := make([]byte, 32<<10)
		if _, err := h.ReadAtSync(buf, 0); err != nil {
			t.Fatalf("%v: post-optimize read: %v", scheme, err)
		}
		sys.Close()
	}
}

// TestDynamicReoptimization drives the future-work dynamic mode end to
// end: the workload's pattern changes mid-run, the manager detects the
// drift and re-plans, and all data written under both generations stays
// readable.
func TestDynamicReoptimization(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster.HServers, cfg.Cluster.SServers = 4, 2
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	mgr, err := NewDynamicManager(sys, MHA, DynamicPolicy{
		Window: 16, Threshold: 0.3, MinNewRecords: 16,
	})
	if err != nil {
		t.Fatal(err)
	}

	h, _ := sys.Open("app.dat", 0)
	rng := rand.New(rand.NewSource(11))
	written := map[int64][]byte{}
	writeAt := func(off, size int64) {
		data := make([]byte, size)
		rng.Read(data)
		if _, err := h.WriteAtSync(data, off); err != nil {
			t.Fatal(err)
		}
		written[off] = data
	}

	// Phase A: 16 KB records.
	off := int64(0)
	for i := 0; i < 20; i++ {
		writeAt(off, 16<<10)
		off += 16 << 10
	}
	did, _, err := mgr.Check()
	if err != nil || !did {
		t.Fatalf("initial plan: did=%v err=%v", did, err)
	}
	gen0 := sys.Generation()

	// Phase B: the pattern shifts to 512 KB records.
	for i := 0; i < 20; i++ {
		writeAt(off, 512<<10)
		off += 512 << 10
	}
	did, div, err := mgr.Check()
	if err != nil || !did {
		t.Fatalf("drift re-plan: did=%v div=%v err=%v", did, div, err)
	}
	if sys.Generation() != gen0+1 {
		t.Errorf("generation = %d, want %d", sys.Generation(), gen0+1)
	}

	// Every extent from both phases must read back intact through the new
	// generation.
	for o, want := range written {
		buf := make([]byte, len(want))
		if _, err := h.ReadAtSync(buf, o); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("extent at %d corrupted across re-optimization", o)
		}
	}
}

// Re-optimization leaves the previous generation's regions behind;
// GarbageCollect must reclaim exactly those, and the data must remain
// intact through the surviving generation.
func TestGarbageCollect(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster.HServers, cfg.Cluster.SServers = 2, 2
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	h, _ := sys.Open("f", 0)
	data := make([]byte, 128<<10)
	rand.New(rand.NewSource(9)).Read(data)
	if _, err := h.WriteAtSync(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.Optimize(MHA, nil); err != nil {
		t.Fatal(err)
	}
	if got := sys.GarbageCollect(); len(got) != 0 {
		t.Errorf("first generation GC removed %v", got)
	}
	gen0Regions := map[string]bool{}
	for _, r := range sys.Plan().Regions {
		gen0Regions[r.File] = true
	}
	if err := sys.Optimize(MHA, nil); err != nil {
		t.Fatal(err)
	}
	removed := sys.GarbageCollect()
	if len(removed) == 0 {
		t.Fatal("GC reclaimed nothing after re-optimization")
	}
	for _, name := range removed {
		if !gen0Regions[name] {
			t.Errorf("GC removed non-stale file %s", name)
		}
		if _, ok := sys.Cluster().Lookup(name); ok {
			t.Errorf("removed file %s still present", name)
		}
	}
	// Data must still read back via the current generation.
	buf := make([]byte, len(data))
	if _, err := h.ReadAtSync(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("data lost after GC")
	}
}

// Whole-pipeline property: for random write workloads, any scheme, after
// optimization and migration every byte reads back intact through the
// middleware.
func TestPipelineReadYourWritesQuick(t *testing.T) {
	schemes := []Scheme{DEF, AAL, HARL, MHA}
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		scheme := schemes[trial%len(schemes)]
		cfg := DefaultConfig()
		cfg.Cluster.HServers = 1 + rng.Intn(4)
		cfg.Cluster.SServers = 1 + rng.Intn(3)
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nFiles := 1 + rng.Intn(3)
		type ext struct {
			file string
			off  int64
			data []byte
		}
		var exts []ext
		for f := 0; f < nFiles; f++ {
			name := fmt.Sprintf("f%d", f)
			h, err := sys.Open(name, f)
			if err != nil {
				t.Fatal(err)
			}
			off := int64(0)
			for i := 0; i < 4+rng.Intn(6); i++ {
				size := int64(1+rng.Intn(64)) * 4096
				data := make([]byte, size)
				rng.Read(data)
				if _, err := h.WriteAtSync(data, off); err != nil {
					t.Fatal(err)
				}
				exts = append(exts, ext{name, off, data})
				off += size
				if rng.Intn(3) == 0 {
					off += int64(rng.Intn(8)) * 4096 // sparse gap
				}
			}
		}
		if err := sys.Optimize(scheme, nil); err != nil {
			t.Fatalf("trial %d scheme %v: %v", trial, scheme, err)
		}
		sys.SetTracing(false)
		for _, e := range exts {
			h, _ := sys.Open(e.file, 0)
			buf := make([]byte, len(e.data))
			if _, err := h.ReadAtSync(buf, e.off); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, e.data) {
				t.Fatalf("trial %d scheme %v: extent %s@%d corrupted", trial, scheme, e.file, e.off)
			}
		}
		sys.Close()
	}
}

// The durability path: optimize with persisted tables, "crash", resume a
// fresh system from the tables, and confirm redirection places new data
// according to the recovered plan.
func TestResumeSystemFromPersistedTables(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Cluster.HServers, cfg.Cluster.SServers = 2, 2
	cfg.DRTPath = filepath.Join(dir, "drt.db")
	cfg.RSTPath = filepath.Join(dir, "rst.db")

	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := sys.Open("app.dat", 0)
	for i := 0; i < 8; i++ {
		if _, err := h.WriteAtSync(make([]byte, 64<<10), int64(i)*64<<10); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Optimize(MHA, nil); err != nil {
		t.Fatal(err)
	}
	wantRegions := map[string]Plan{}
	_ = wantRegions
	plan := sys.Plan()
	if err := sys.Close(); err != nil { // the "crash" (tables flushed)
		t.Fatal(err)
	}

	re, err := ResumeSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// Every planned region exists again with its recorded layout.
	for _, r := range plan.Regions {
		f, ok := re.Cluster().Lookup(r.File)
		if !ok {
			t.Fatalf("region %s not recreated", r.File)
		}
		if f.Layout != r.Layout {
			t.Errorf("region %s layout %v, want %v", r.File, f.Layout, r.Layout)
		}
	}
	// A new run's writes are redirected into the recovered regions.
	h2, err := re.Open("app.dat", 0)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x5A}, 64<<10)
	if _, err := h2.WriteAtSync(data, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if _, err := h2.ReadAtSync(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("post-resume round trip corrupted data")
	}
	// The bytes must live in a region file, not the original.
	orig, _ := re.Cluster().Lookup("app.dat")
	if orig.Size != 0 {
		t.Errorf("original file grew to %d bytes; redirection inactive", orig.Size)
	}

	// Resume without tables must fail cleanly.
	if _, err := ResumeSystem(DefaultConfig()); err == nil {
		t.Error("resume without table paths accepted")
	}
	empty := DefaultConfig()
	empty.DRTPath = filepath.Join(dir, "none-drt.db")
	empty.RSTPath = filepath.Join(dir, "none-rst.db")
	if _, err := ResumeSystem(empty); err == nil {
		t.Error("resume from empty tables accepted")
	}
}

func TestServerStatsFacade(t *testing.T) {
	sys, _ := NewSystem(DefaultConfig())
	defer sys.Close()
	h, _ := sys.Open("f", 0)
	h.WriteAtSync(make([]byte, 512<<10), 0)
	stats := sys.ServerStats()
	if len(stats) != 8 {
		t.Fatalf("stats = %d servers", len(stats))
	}
	var total int64
	for _, st := range stats {
		total += st.WriteBytes
	}
	if total != 512<<10 {
		t.Errorf("server write bytes = %d, want %d", total, 512<<10)
	}
}
