package mhafs_test

import (
	"fmt"
	"log"

	"mhafs"
)

// The canonical three-step workflow: profiled run, optimization,
// optimized re-run.
func ExampleSystem() {
	sys, err := mhafs.NewSystem(mhafs.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// 1. Profiled first run: the middleware traces every request.
	h, _ := sys.Open("app.dat", 0)
	for i := 0; i < 8; i++ {
		h.WriteAtSync(make([]byte, 4<<10), int64(i)*260<<10)        // small records
		h.WriteAtSync(make([]byte, 256<<10), int64(i)*260<<10+4096) // large blocks
	}
	fmt.Printf("traced %d requests\n", len(sys.Trace()))

	// 2. Offline optimization: group, migrate, optimize stripe pairs.
	if err := sys.Optimize(mhafs.MHA, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned %d regions\n", len(sys.Plan().Regions))

	// 3. Subsequent I/O is transparently redirected.
	buf := make([]byte, 4<<10)
	if _, err := h.ReadAtSync(buf, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("redirected read ok")
	// Output:
	// traced 16 requests
	// planned 2 regions
	// redirected read ok
}

// Generating one of the paper's workloads and replaying it under a scheme.
func ExampleSystem_Replay() {
	tr, err := mhafs.LANL(mhafs.LANLConfig{
		File: "lanl.dat", Op: mhafs.OpWrite, Procs: 8, Loops: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, _ := mhafs.NewSystem(mhafs.DefaultConfig())
	defer sys.Close()
	if err := sys.Optimize(mhafs.MHA, tr); err != nil {
		log.Fatal(err)
	}
	sys.SetTracing(false)
	res, err := sys.Replay(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d requests, bandwidth > 0: %v\n", res.Ops, res.Bandwidth() > 0)
	// Output:
	// replayed 96 requests, bandwidth > 0: true
}
