package mhafs

// One testing.B benchmark per table/figure of the paper's evaluation
// (§V). Each benchmark executes the corresponding experiment end-to-end —
// workload generation, planning under all four schemes, placement, and
// replay on the simulated cluster — and reports the per-scheme aggregate
// bandwidths as custom metrics (units: simulated MB/s), so `go test
// -bench=.` regenerates every figure's series. Run `cmd/mhabench` for the
// full paper-style tables.

import (
	"fmt"
	"strings"
	"testing"

	"mhafs/internal/bench"
	"mhafs/internal/layout"
	"mhafs/internal/metrics"
	"mhafs/internal/units"
)

// benchConfig uses a higher scale divisor than the CLI so -bench runs
// complete quickly; shapes are scale-invariant.
func benchConfig() bench.Config {
	c := bench.Default()
	c.Scale = 512
	return c
}

// reportRows publishes each row's per-scheme bandwidths as benchmark
// metrics, e.g. "read/128+256/MHA" in MB/s.
func reportRows(b *testing.B, rows []bench.BandwidthRow) {
	b.Helper()
	for _, row := range rows {
		for _, s := range layout.AllSchemes() {
			if bw, ok := row.Read[s]; ok && bw > 0 {
				b.ReportMetric(bw, fmt.Sprintf("read/%s/%s", row.Label, s))
			}
			if bw, ok := row.Write[s]; ok && bw > 0 {
				b.ReportMetric(bw, fmt.Sprintf("write/%s/%s", row.Label, s))
			}
		}
	}
}

func runBandwidthBench(b *testing.B, fn func(bench.Config) ([]bench.BandwidthRow, *metrics.Table, error)) {
	b.Helper()
	cfg := benchConfig()
	var rows []bench.BandwidthRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = fn(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, rows)
}

// BenchmarkFig03LANLSequence regenerates the Fig. 3 request-size sequence.
func BenchmarkFig03LANLSequence(b *testing.B) {
	var rowCount int
	for i := 0; i < b.N; i++ {
		tb := bench.Fig3(5)
		rowCount = tb.Rows()
	}
	b.ReportMetric(float64(rowCount), "requests")
}

// BenchmarkFig07IORMixedSizes regenerates Fig. 7: IOR bandwidth with mixed
// request sizes under DEF/AAL/HARL/MHA.
func BenchmarkFig07IORMixedSizes(b *testing.B) {
	runBandwidthBench(b, func(c bench.Config) ([]bench.BandwidthRow, *metrics.Table, error) {
		return c.Fig7()
	})
}

// BenchmarkFig08PerServerTime regenerates Fig. 8: normalized per-server
// I/O times; reported metrics are the per-scheme load-imbalance factors
// (max/min across servers).
func BenchmarkFig08PerServerTime(b *testing.B) {
	cfg := benchConfig()
	var rows []bench.Fig8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = cfg.Fig8()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range layout.AllSchemes() {
		var vals []float64
		for _, r := range rows {
			vals = append(vals, r.Time[s])
		}
		b.ReportMetric(metrics.LoadImbalance(vals), fmt.Sprintf("imbalance/%s", s))
	}
}

// BenchmarkFig09IORMixedProcs regenerates Fig. 9: IOR bandwidth with mixed
// process numbers.
func BenchmarkFig09IORMixedProcs(b *testing.B) {
	runBandwidthBench(b, func(c bench.Config) ([]bench.BandwidthRow, *metrics.Table, error) {
		return c.Fig9()
	})
}

// BenchmarkFig10ServerRatios regenerates Fig. 10: IOR bandwidth across
// HServer:SServer ratios.
func BenchmarkFig10ServerRatios(b *testing.B) {
	runBandwidthBench(b, func(c bench.Config) ([]bench.BandwidthRow, *metrics.Table, error) {
		return c.Fig10()
	})
}

// BenchmarkFig11HPIO regenerates Fig. 11: HPIO bandwidth across process
// counts.
func BenchmarkFig11HPIO(b *testing.B) {
	runBandwidthBench(b, func(c bench.Config) ([]bench.BandwidthRow, *metrics.Table, error) {
		return c.Fig11()
	})
}

// BenchmarkFig12aBTIO regenerates Fig. 12a: BTIO aggregate bandwidth.
func BenchmarkFig12aBTIO(b *testing.B) {
	runBandwidthBench(b, func(c bench.Config) ([]bench.BandwidthRow, *metrics.Table, error) {
		return c.Fig12a()
	})
}

// BenchmarkFig12bLANL regenerates Fig. 12b: LANL App2 replay.
func BenchmarkFig12bLANL(b *testing.B) {
	runBandwidthBench(b, func(c bench.Config) ([]bench.BandwidthRow, *metrics.Table, error) {
		return c.Fig12b()
	})
}

// BenchmarkFig13aLU regenerates Fig. 13a: LU decomposition replay.
func BenchmarkFig13aLU(b *testing.B) {
	runBandwidthBench(b, func(c bench.Config) ([]bench.BandwidthRow, *metrics.Table, error) {
		return c.Fig13a()
	})
}

// BenchmarkFig13bCholesky regenerates Fig. 13b: sparse Cholesky replay.
func BenchmarkFig13bCholesky(b *testing.B) {
	runBandwidthBench(b, func(c bench.Config) ([]bench.BandwidthRow, *metrics.Table, error) {
		return c.Fig13b()
	})
}

// BenchmarkFig14RedirectionOverhead regenerates Fig. 14: the middleware
// redirection overhead; metrics are the per-process-count overhead
// percentages.
func BenchmarkFig14RedirectionOverhead(b *testing.B) {
	cfg := benchConfig()
	var rows []bench.Fig14Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = cfg.Fig14()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.OverheadPct, fmt.Sprintf("overhead%%/%dp", r.Procs))
	}
}

// BenchmarkTab1MetaOverhead regenerates the §V-E2 metadata-space analysis.
func BenchmarkTab1MetaOverhead(b *testing.B) {
	var rows []bench.MetaOverheadRow
	for i := 0; i < b.N; i++ {
		rows, _ = bench.MetaOverhead([]int64{4 * units.KB, 64 * units.KB, 1 * units.MB})
	}
	for _, r := range rows {
		b.ReportMetric(r.OverheadPct, fmt.Sprintf("overhead%%/%s", units.Bytes(r.RequestSize)))
	}
}

// BenchmarkExtendedComparison runs the six-scheme comparison (the paper's
// four plus the related-work CARL and HAS baselines).
func BenchmarkExtendedComparison(b *testing.B) {
	cfg := benchConfig()
	var rows []bench.ExtendedRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = cfg.Extended()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		label := strings.ReplaceAll(r.Label, " ", "-")
		for _, s := range layout.ExtendedSchemes() {
			b.ReportMetric(r.BW[s], fmt.Sprintf("%s/%s", label, s))
		}
	}
}

// BenchmarkLatencyDistribution reports each scheme's p99 request latency
// (ms) on the mixed-size reference workload.
func BenchmarkLatencyDistribution(b *testing.B) {
	cfg := benchConfig()
	var rows []bench.LatencyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = cfg.Latency()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Lat.P99*1e3, fmt.Sprintf("p99ms/%s", r.Scheme))
	}
}
